(* Tests for the paper's protocols on trees: Path AA (§4), known-path AA
   (§5), PathsFinder (§6, Lemma 4), TreeAA (§7, Theorem 4), and the
   Nowak-Rybicki-style baseline. *)

open Aat_tree
open Aat_engine
open Aat_treeaa
module LT = Labeled_tree
module Strategies = Aat_adversary.Strategies
module Spoiler = Aat_adversary.Spoiler
module Compose = Aat_adversary.Compose
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig3 () =
  LT.of_labeled_edges
    [
      ("v1", "v2"); ("v2", "v3"); ("v3", "v6"); ("v3", "v7");
      ("v2", "v4"); ("v4", "v8"); ("v2", "v5");
    ]

let v t l = LT.vertex_of_label t l

(* Validity's hull is over *initially*-honest inputs (a party corrupted
   adaptively mid-run contributed its input while honest — see
   Sync_engine.initially_corrupted); Termination and Agreement quantify over
   finally-honest parties. *)
let honest_io inputs (report : (_, _) Sync_engine.report) =
  let initially = Sync_engine.initially_corrupted report in
  let hull_inputs =
    Array.to_list (Array.mapi (fun i x -> (i, x)) inputs)
    |> List.filter_map (fun (i, x) ->
           if List.mem i initially then None else Some x)
  in
  (hull_inputs, Sync_engine.honest_outputs report)

let tree_verdict ~tree inputs (report : (_, _) Sync_engine.report) =
  let hull_inputs, honest_outputs = honest_io inputs report in
  let n_honest = Array.length inputs - List.length report.corrupted in
  Tree_verdict.check ~tree ~n_honest ~honest_inputs:hull_inputs ~honest_outputs

(* --- Tree_verdict itself --- *)

let test_verdict_detects_violations () =
  let tree = fig3 () in
  let ok =
    Tree_verdict.check ~tree ~n_honest:2
      ~honest_inputs:[ v tree "v6"; v tree "v7" ]
      ~honest_outputs:[ v tree "v3"; v tree "v6" ]
  in
  check "valid run" true (Verdict.all_ok ok);
  let invalid =
    Tree_verdict.check ~tree ~n_honest:2
      ~honest_inputs:[ v tree "v6"; v tree "v7" ]
      ~honest_outputs:[ v tree "v5"; v tree "v6" ]
  in
  check "validity caught" false invalid.validity;
  let split =
    Tree_verdict.check ~tree ~n_honest:2
      ~honest_inputs:[ v tree "v6"; v tree "v5" ]
      ~honest_outputs:[ v tree "v6"; v tree "v5" ]
  in
  check "1-agreement caught" false split.agreement;
  let missing =
    Tree_verdict.check ~tree ~n_honest:3
      ~honest_inputs:[ v tree "v6"; v tree "v7"; v tree "v3" ]
      ~honest_outputs:[ v tree "v3"; v tree "v3" ]
  in
  check "termination caught" false missing.termination

let test_output_diameter () =
  let tree = fig3 () in
  check_int "diam" 4
    (Tree_verdict.output_diameter ~tree [ v tree "v6"; v tree "v8"; v tree "v2" ]);
  check_int "single" 0 (Tree_verdict.output_diameter ~tree [ v tree "v6" ]);
  check_int "empty" 0 (Tree_verdict.output_diameter ~tree [])

(* --- Path AA (§4) --- *)

let test_path_aa_fault_free () =
  let path = Generate.path 20 in
  let inputs = [| 0; 19; 5; 12; 7; 3; 16 |] in
  let protocol = Path_aa.protocol ~path ~inputs:(fun i -> inputs.(i)) ~t:2 in
  let report =
    Sync_engine.run ~n:7 ~t:2
      ~max_rounds:(Path_aa.rounds ~path)
      ~protocol ~adversary:(Adversary.passive "none") ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree:path inputs report));
  check_int "schedule" (Path_aa.rounds ~path) report.rounds_used

let test_path_aa_with_byz () =
  let path = Generate.path 50 in
  let inputs = [| 0; 49; 10; 30; 25; 42; 3 |] in
  let protocol = Path_aa.protocol ~path ~inputs:(fun i -> inputs.(i)) ~t:2 in
  let report =
    Sync_engine.run ~n:7 ~t:2
      ~max_rounds:(Path_aa.rounds ~path)
      ~protocol
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree:path inputs report))

let test_path_aa_rejects_non_path () =
  check "star rejected" true
    (try
       ignore (Path_aa.protocol ~path:(Generate.star 5) ~inputs:(fun _ -> 0) ~t:1);
       false
     with Invalid_argument _ -> true)

let test_path_aa_canonical_order () =
  let path = Generate.path 5 in
  let order = Path_aa.canonical_order path in
  Alcotest.(check (list int)) "identity order" [ 0; 1; 2; 3; 4 ]
    (Array.to_list order)

(* --- Known-path AA (§5) --- *)

(* Figure 2's tree: spine v1..v8 with hairs to u1 (via x1), u2, u3 (via x2). *)
let fig2 () =
  LT.of_labeled_edges
    [
      ("v1", "v2"); ("v2", "v3"); ("v3", "v4"); ("v4", "v5");
      ("v5", "v6"); ("v6", "v7"); ("v7", "v8");
      ("v3", "x1"); ("x1", "u1"); ("v4", "u2"); ("v6", "x2"); ("x2", "u3");
    ]

let test_known_path_aa_fig2 () =
  let tree = fig2 () in
  let path = Array.map (v tree) [| "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7"; "v8" |] in
  (* honest inputs are u1, u2, u3 (projections v3, v4, v6); byz hold junk *)
  let inputs =
    [| v tree "u1"; v tree "u2"; v tree "u3"; v tree "v5"; v tree "u1";
       v tree "v8"; v tree "v8" |]
  in
  let protocol =
    Known_path_aa.protocol ~tree ~path ~inputs:(fun i -> inputs.(i)) ~t:2
  in
  let report =
    Sync_engine.run ~n:7 ~t:2
      ~max_rounds:(Known_path_aa.rounds ~path)
      ~protocol
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in
  let verdict = tree_verdict ~tree inputs report in
  check "verdict" true (Verdict.all_ok verdict);
  (* outputs must lie on the path *)
  List.iter
    (fun o -> check "on path" true (Paths.mem path o))
    (Sync_engine.honest_outputs report)

let test_known_path_aa_rejects_non_path () =
  let tree = fig2 () in
  let bogus = [| v tree "v1"; v tree "v3" |] in
  check "rejected" true
    (try
       ignore (Known_path_aa.protocol ~tree ~path:bogus ~inputs:(fun _ -> 0) ~t:1);
       false
     with Invalid_argument _ -> true)

(* --- PathsFinder (§6): Lemma 4 --- *)

let paths_finder_outputs ~tree ~inputs ~t ~adversary =
  let protocol = Paths_finder.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t in
  let report =
    Sync_engine.run ~n:(Array.length inputs) ~t
      ~max_rounds:(max 1 (Paths_finder.rounds ~tree))
      ~protocol ~adversary ()
  in
  report

let lemma4_holds ~tree ~inputs (report : (Paths.path, _) Sync_engine.report) =
  let honest_inputs, paths = honest_io inputs report in
  let rooted = Rooted.make tree in
  let hull = Convex_hull.compute rooted honest_inputs in
  (* Property 1: every path intersects the hull. *)
  let prop1 =
    List.for_all (fun p -> Array.exists (Convex_hull.mem hull) p) paths
  in
  (* Property 2: all paths start at the root and are prefixes of the longest
     one, shorter by at most one vertex. *)
  let prop2 =
    let root = LT.root tree in
    let sorted = List.sort (fun a b -> compare (Array.length a) (Array.length b)) paths in
    match (sorted, List.rev sorted) with
    | [], _ | _, [] -> true
    | shortest :: _, longest :: _ ->
        Array.length longest - Array.length shortest <= 1
        && List.for_all
             (fun p ->
               Array.length p > 0 && p.(0) = root
               && Array.for_all Fun.id
                    (Array.mapi (fun i x -> longest.(i) = x) p))
             paths
  in
  prop1 && prop2

let test_paths_finder_fig3 () =
  let tree = fig3 () in
  (* the paper's §6 example: honest inputs v3, v6, v5 *)
  let inputs = [| v tree "v3"; v tree "v6"; v tree "v5"; v tree "v3";
                  v tree "v6"; v tree "v7"; v tree "v8" |] in
  let report =
    paths_finder_outputs ~tree ~inputs ~t:2
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
  in
  check "Lemma 4" true (lemma4_holds ~tree ~inputs report)

let test_paths_finder_trivial_tree () =
  let tree = LT.singleton "root" in
  let inputs = [| 0; 0; 0; 0 |] in
  let report =
    paths_finder_outputs ~tree ~inputs ~t:1 ~adversary:(Adversary.passive "none")
  in
  List.iter
    (fun p -> check_int "root path" 1 (Array.length p))
    (Sync_engine.honest_outputs report)

(* --- TreeAA (§7): Theorem 4 --- *)

let test_tree_aa_fig3_fault_free () =
  let tree = fig3 () in
  let inputs = [| v tree "v3"; v tree "v6"; v tree "v5"; v tree "v8";
                  v tree "v1"; v tree "v7"; v tree "v4" |] in
  let report =
    Tree_aa.run ~tree ~inputs ~t:2 ~adversary:(Adversary.passive "none") ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report));
  check_int "exact schedule" (Tree_aa.rounds ~tree) report.rounds_used

let test_tree_aa_fig3_silent_byz () =
  let tree = fig3 () in
  let inputs = [| v tree "v3"; v tree "v6"; v tree "v5"; v tree "v8";
                  v tree "v1"; v tree "v7"; v tree "v4" |] in
  let report =
    Tree_aa.run ~tree ~inputs ~t:2
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_tree_aa_trivial_trees () =
  (* single vertex *)
  let tree1 = LT.singleton "x" in
  let report1 =
    Tree_aa.run ~tree:tree1 ~inputs:[| 0; 0; 0; 0 |] ~t:1
      ~adversary:(Adversary.passive "none") ()
  in
  check_int "no rounds" 0 report1.rounds_used;
  check "verdict" true
    (Verdict.all_ok (tree_verdict ~tree:tree1 [| 0; 0; 0; 0 |] report1));
  (* single edge: parties output own inputs, 1-close by construction *)
  let tree2 = Generate.path 2 in
  let inputs2 = [| 0; 1; 0; 1 |] in
  let report2 =
    Tree_aa.run ~tree:tree2 ~inputs:inputs2 ~t:1
      ~adversary:(Adversary.passive "none") ()
  in
  check_int "no rounds (edge)" 0 report2.rounds_used;
  check "verdict (edge)" true (Verdict.all_ok (tree_verdict ~tree:tree2 inputs2 report2))

let test_tree_aa_long_path () =
  let tree = Generate.path 200 in
  let inputs = [| 0; 199; 50; 120; 75; 30; 160 |] in
  let report =
    Tree_aa.run ~tree ~inputs ~t:2
      ~adversary:(Strategies.crash ~at_round:5 ~victims:[ 1; 4 ])
      ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_tree_aa_star () =
  let tree = Generate.star 30 in
  let inputs = [| 1; 7; 13; 29; 2; 5; 11 |] in
  let report =
    Tree_aa.run ~tree ~inputs ~t:2
      ~adversary:(Strategies.silent ~victims:[ 0; 3 ])
      ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_tree_aa_spoiler_both_phases () =
  let tree = Generate.caterpillar ~spine:20 ~legs:2 in
  let n = 10 and t = 3 in
  let nv = LT.n_vertices tree in
  let inputs = Array.init n (fun i -> (i * 13) mod nv) in
  let tour_len = (2 * nv) - 1 in
  let iter1 =
    Aat_realaa.Rounds.bdh_iterations ~range:(float_of_int (tour_len - 1)) ~eps:1.
  in
  let iter2 =
    Aat_realaa.Rounds.bdh_iterations
      ~range:(float_of_int (Metrics.diameter tree))
      ~eps:1.
  in
  let adversary =
    Compose.phased ~name:"spoiler-both"
      ~barrier:(max 1 (Paths_finder.rounds ~tree))
      ~first:(Spoiler.realaa_spoiler ~t ~iterations:iter1)
      ~second:(Spoiler.realaa_spoiler ~t ~iterations:iter2)
  in
  let report = Tree_aa.run ~tree ~inputs ~t ~adversary () in
  check "verdict under spoiler" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_tree_aa_rounds_scaling () =
  (* Theorem 4: rounds grow like log|V|/loglog|V| — sanity: the schedule for
     10x more vertices grows by far less than 10x. *)
  let r1 = Tree_aa.rounds ~tree:(Generate.path 100) in
  let r2 = Tree_aa.rounds ~tree:(Generate.path 1000) in
  check "sublinear growth" true (r2 < 2 * r1);
  check "monotone" true (r2 >= r1)

(* --- NR baseline --- *)

let test_safe_vertices_path_matches_trim () =
  (* On a path, the safe set must be the [t+1 .. m-t]-th order statistics'
     span — exactly real-valued trimming. *)
  let tree = Generate.path 10 in
  let rooted = Rooted.make tree in
  let multiset = [ 0; 2; 2; 5; 7; 9; 9 ] in
  (* m = 7, t = 2: safe span = positions 2..7 of sorted multiset -> [2, 7] *)
  let safe = Nr_baseline.safe_vertices rooted ~t:2 multiset in
  Alcotest.(check (list int)) "safe interval" [ 2; 3; 4; 5; 6; 7 ] safe

let test_safe_vertices_star () =
  let tree = Generate.star 8 in
  let rooted = Rooted.make tree in
  (* all mass on distinct leaves: only the center is safe *)
  let safe = Nr_baseline.safe_vertices rooted ~t:2 [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check (list int)) "center only" [ 0 ] safe;
  (* heavy single leaf: if one leaf holds >= m - t of the mass it is safe *)
  let safe2 = Nr_baseline.safe_vertices rooted ~t:2 [ 1; 1; 1; 1; 1; 2; 3 ] in
  check "heavy leaf safe" true (List.mem 1 safe2)

let test_safe_vertices_inside_honest_hull () =
  let tree = fig3 () in
  let rooted = Rooted.make tree in
  (* multiset = 5 honest in subtree of v2 + 2 byz at v6 *)
  let multiset =
    [ v tree "v5"; v tree "v5"; v tree "v8"; v tree "v8"; v tree "v4";
      v tree "v6"; v tree "v6" ]
  in
  let safe = Nr_baseline.safe_vertices rooted ~t:2 multiset in
  let hull =
    Convex_hull.compute rooted [ v tree "v5"; v tree "v8"; v tree "v4" ]
  in
  check "safe inside honest hull" true (List.for_all (Convex_hull.mem hull) safe)

let test_center_of () =
  let tree = Generate.path 10 in
  let rooted = Rooted.make tree in
  check_int "interval midpoint" 4 (Nr_baseline.center_of rooted [ 2; 3; 4; 5; 6 ]);
  check_int "pair" 2 (Nr_baseline.center_of rooted [ 2; 3 ]);
  check_int "singleton" 7 (Nr_baseline.center_of rooted [ 7 ])

let test_nr_baseline_converges () =
  let tree = Generate.path 100 in
  let inputs = [| 0; 99; 20; 60; 40; 10; 90 |] in
  let report =
    Nr_baseline.run ~tree ~inputs ~t:2
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_nr_baseline_on_fig3 () =
  let tree = fig3 () in
  let inputs = [| v tree "v3"; v tree "v6"; v tree "v5"; v tree "v8";
                  v tree "v1"; v tree "v7"; v tree "v4" |] in
  let report =
    Nr_baseline.run ~tree ~inputs ~t:2 ~adversary:(Adversary.passive "none") ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_tree_aa_beats_nr_on_long_paths () =
  let tree = Generate.path 3000 in
  check "fewer rounds" true (Tree_aa.rounds ~tree < Nr_baseline.rounds ~tree)

(* --- randomized end-to-end property --- *)

let prop_tree_aa_random =
  QCheck2.Test.make ~name:"TreeAA on random trees under assorted adversaries"
    ~count:60
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 60) (int_range 0 2))
    (fun (seed, nv, adv_class) ->
      let rng = Rng.create seed in
      let tree = Generate.random rng nv in
      let n = 7 and t = 2 in
      let inputs = Array.init n (fun _ -> Rng.int rng nv) in
      let adversary =
        match adv_class with
        | 0 -> Adversary.passive "none"
        | 1 -> Strategies.random_silent ~count:t
        | _ ->
            Strategies.crash
              ~at_round:(1 + Rng.int rng (max 1 (Tree_aa.rounds ~tree)))
              ~victims:[ 0; 3 ]
      in
      let report = Tree_aa.run ~seed ~tree ~inputs ~t ~adversary () in
      Verdict.all_ok (tree_verdict ~tree inputs report))

let prop_nr_baseline_random =
  QCheck2.Test.make ~name:"NR baseline on random trees" ~count:40
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 40))
    (fun (seed, nv) ->
      let rng = Rng.create seed in
      let tree = Generate.random rng nv in
      let n = 7 and t = 2 in
      let inputs = Array.init n (fun _ -> Rng.int rng nv) in
      let report =
        Nr_baseline.run ~seed ~tree ~inputs ~t
          ~adversary:(Strategies.random_silent ~count:t)
          ()
      in
      Verdict.all_ok (tree_verdict ~tree inputs report))

let () =
  Alcotest.run "treeaa"
    [
      ( "verdict",
        [
          Alcotest.test_case "violations detected" `Quick
            test_verdict_detects_violations;
          Alcotest.test_case "output diameter" `Quick test_output_diameter;
        ] );
      ( "path-aa",
        [
          Alcotest.test_case "fault free" `Quick test_path_aa_fault_free;
          Alcotest.test_case "with byz" `Quick test_path_aa_with_byz;
          Alcotest.test_case "rejects non-path" `Quick
            test_path_aa_rejects_non_path;
          Alcotest.test_case "canonical order" `Quick
            test_path_aa_canonical_order;
        ] );
      ( "known-path-aa",
        [
          Alcotest.test_case "figure 2 scenario" `Quick test_known_path_aa_fig2;
          Alcotest.test_case "rejects non-path" `Quick
            test_known_path_aa_rejects_non_path;
        ] );
      ( "paths-finder",
        [
          Alcotest.test_case "Lemma 4 on fig3" `Quick test_paths_finder_fig3;
          Alcotest.test_case "trivial tree" `Quick
            test_paths_finder_trivial_tree;
        ] );
      ( "tree-aa",
        [
          Alcotest.test_case "fig3 fault free" `Quick
            test_tree_aa_fig3_fault_free;
          Alcotest.test_case "fig3 silent byz" `Quick
            test_tree_aa_fig3_silent_byz;
          Alcotest.test_case "trivial trees" `Quick test_tree_aa_trivial_trees;
          Alcotest.test_case "long path" `Quick test_tree_aa_long_path;
          Alcotest.test_case "star" `Quick test_tree_aa_star;
          Alcotest.test_case "spoiler in both phases" `Quick
            test_tree_aa_spoiler_both_phases;
          Alcotest.test_case "rounds scaling" `Quick test_tree_aa_rounds_scaling;
        ] );
      ( "nr-baseline",
        [
          Alcotest.test_case "safe set on path = trim" `Quick
            test_safe_vertices_path_matches_trim;
          Alcotest.test_case "safe set on star" `Quick test_safe_vertices_star;
          Alcotest.test_case "safe set inside hull" `Quick
            test_safe_vertices_inside_honest_hull;
          Alcotest.test_case "center_of" `Quick test_center_of;
          Alcotest.test_case "converges on path" `Quick
            test_nr_baseline_converges;
          Alcotest.test_case "fig3" `Quick test_nr_baseline_on_fig3;
          Alcotest.test_case "TreeAA beats NR on long paths" `Quick
            test_tree_aa_beats_nr_on_long_paths;
        ] );
      ( "random",
        List.map QCheck_alcotest.to_alcotest
          [ prop_tree_aa_random; prop_nr_baseline_random ] );
    ]
