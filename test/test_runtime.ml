(* Tests for the unified runtime substrate: shared defaults, the transport
   mailbox, forgery-count parity across both engines, the engine-agnostic
   adversary interface, and differential execution of one protocol text
   under both engines via the round-simulation adapter. *)

open Aat_engine
open Aat_async
open Aat_adversary
module Runtime = Aat_runtime
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- fixtures ------------------------------------------------------ *)

(* one-round gather: everyone pings everyone in round 1, decides on its
   sorted round-1 inbox (the synchronous twin of the gather reactor) *)
let gather_protocol : (int * int list option, int, int list) Protocol.t =
  {
    Protocol.name = "gather1";
    init = (fun ~self:_ ~n -> (n, None));
    send =
      (fun ~round ~self (n, _) ->
        if round = 1 then List.init n (fun p -> (p, self)) else []);
    receive =
      (fun ~round ~self:_ ~inbox (n, got) ->
        if round = 1 then
          ( n,
            Some
              (List.sort compare
                 (List.map (fun (e : int Types.envelope) -> e.payload) inbox))
          )
        else (n, got));
    output = (fun (_, got) -> got);
  }

type gather = { mutable heard : int list }

let gather_reactor ~quota : (gather, int, int list) Async_engine.reactor =
  {
    name = "gather";
    init = (fun ~self ~n -> ({ heard = [] }, List.init n (fun p -> (p, self))));
    on_message =
      (fun ~self:_ e st ->
        st.heard <- e.payload :: st.heard;
        (st, []));
    output =
      (fun st ->
        if List.length st.heard >= quota then
          Some (List.sort compare st.heard)
        else None);
  }

let never_protocol : (unit, int, unit) Protocol.t =
  {
    Protocol.name = "never";
    init = (fun ~self:_ ~n:_ -> ());
    send = (fun ~round:_ ~self:_ () -> []);
    receive = (fun ~round:_ ~self:_ ~inbox:_ () -> ());
    output = (fun () -> None);
  }

(* --- shared defaults ----------------------------------------------- *)

let test_default_formulas () =
  check_int "max_rounds" ((4 * 3) + 64) (Runtime.Defaults.max_rounds ~n:3);
  check_int "patience" (8 * 5 * 5) (Runtime.Defaults.patience ~n:5);
  check "max_events positive" true (Runtime.Defaults.max_events > 0);
  check "stride positive" true (Runtime.Defaults.telemetry_stride > 0)

let test_sync_engine_reads_default_max_rounds () =
  (* no ~max_rounds: the engine must give up after exactly the shared
     default, and say so in the exception *)
  match
    Sync_engine.run ~n:3 ~t:0 ~protocol:never_protocol
      ~adversary:(Adversary.passive "none") ()
  with
  | _ -> Alcotest.fail "never-protocol terminated"
  | exception Sync_engine.Exceeded_max_rounds msg ->
      Alcotest.(check string) "message names the shared default"
        (Printf.sprintf "never: honest party undecided after %d rounds"
           (Runtime.Defaults.max_rounds ~n:3))
        msg

let test_async_engine_reads_default_patience () =
  (* no ~patience: the laggard scheduler starves party 0, the shared
     default must still force its messages through *)
  let report =
    Async_engine.run ~n:5 ~t:0
      ~reactor:(gather_reactor ~quota:5)
      ~adversary:
        (Async_engine.passive ~scheduler:(Async_engine.Laggards [ 0 ]) "lag")
      ()
  in
  check_int "all decided" 5 (List.length report.outputs);
  List.iter
    (fun (_, heard) ->
      Alcotest.(check (list int)) "heard all" [ 0; 1; 2; 3; 4 ] heard)
    report.outputs

(* --- the transport mailbox ----------------------------------------- *)

let letter src dst body = { Types.src; dst; body }

let test_mailbox_dedup_and_inbox_order () =
  let mb : int Runtime.Mailbox.t = Runtime.Mailbox.create ~n:4 in
  Runtime.Mailbox.begin_round mb;
  Runtime.Mailbox.post mb (letter 2 0 20);
  Runtime.Mailbox.post mb (letter 1 0 10);
  Runtime.Mailbox.post mb (letter 2 0 99);
  (* dup pair: dropped *)
  Runtime.Mailbox.post mb (letter 3 1 30);
  Alcotest.(check (list (pair int int)))
    "inbox sorted by sender, one per pair"
    [ (1, 10); (2, 20) ]
    (List.map
       (fun (e : int Types.envelope) -> (e.sender, e.payload))
       (Runtime.Mailbox.inbox mb 0));
  check_int "delivered this round" 3
    (List.length (Runtime.Mailbox.delivered mb));
  Runtime.Mailbox.begin_round mb;
  check_int "round state reset" 0 (List.length (Runtime.Mailbox.inbox mb 0));
  (* last-submitted-wins posting: the adversary's final double-send
     choice is the one delivered *)
  Runtime.Mailbox.post_last_wins mb [ letter 2 0 1; letter 2 0 2 ];
  Alcotest.(check (list (pair int int)))
    "last wins" [ (2, 2) ]
    (List.map
       (fun (e : int Types.envelope) -> (e.sender, e.payload))
       (Runtime.Mailbox.inbox mb 0))

let test_mailbox_screen () =
  let mb : int Runtime.Mailbox.t = Runtime.Mailbox.create ~n:4 in
  let corrupted = Runtime.Party_set.of_list ~n:4 [ 3 ] in
  let kept =
    Runtime.Mailbox.screen mb ~adversary:"test" ~corrupted
      [
        letter 3 0 1 (* legit *);
        letter 0 1 2 (* forged honest sender *);
        letter 9 1 3 (* forged out-of-range sender *);
        letter 3 9 4 (* void recipient: silent drop *);
      ]
  in
  check_int "kept" 1 (List.length kept);
  check_int "forgeries counted" 2 (Runtime.Mailbox.rejected_forgeries mb)

(* --- forgery-count parity across engines --------------------------- *)

(* One canned injection batch, delivered at sync round 1 / async event 1 by
   the same engine-agnostic adversary core: both engines must screen it
   through the shared mailbox and report identical counters. *)
let canned_injector : int Adversary.t =
  Adversary.static ~name:"canned"
    ~pick:(fun ~n:_ ~t:_ _ -> [ 4 ])
    ~deliver:(fun view ->
      if view.Adversary.round = 1 then
        [
          letter 0 1 900 (* forged: honest src *);
          letter 2 3 901 (* forged: honest src *);
          letter 4 0 444;
          letter 4 1 444;
          letter 4 2 444;
          letter 4 99 902 (* void recipient *);
        ]
      else [])

let test_forgery_count_parity () =
  let sync_report =
    Sync_engine.run ~n:5 ~t:1 ~protocol:gather_protocol
      ~adversary:canned_injector ()
  in
  let async_report =
    Async_engine.run ~n:5 ~t:1
      ~reactor:(gather_reactor ~quota:4)
      ~adversary:(Async_engine.with_scheduler canned_injector)
      ()
  in
  check_int "sync: forgeries" 2 sync_report.rejected_forgeries;
  check_int "async: forgeries" 2 async_report.rejected_forgeries;
  check_int "sync: accepted adversary letters" 3 sync_report.adversary_messages;
  check_int "async: accepted adversary letters" 3
    async_report.adversary_messages;
  Alcotest.(check string) "engine tags" "sync/async"
    (sync_report.engine ^ "/" ^ async_report.engine);
  (* the injected 444s actually reach the sync inboxes *)
  Alcotest.(check (list int))
    "sync p0 inbox" [ 0; 1; 2; 3; 444 ]
    (Runtime.Report.output_of sync_report 0)

(* --- lib/adversary strategies against the async engine -------------- *)

let test_silent_strategy_on_async () =
  let report =
    Async_engine.run ~n:5 ~t:1
      ~reactor:(gather_reactor ~quota:4)
      ~adversary:(Async_engine.with_scheduler (Strategies.silent ~victims:[ 4 ]))
      ()
  in
  Alcotest.(check (list int)) "corrupted" [ 4 ] report.corrupted;
  check_int "honest outputs" 4 (List.length report.outputs);
  List.iter
    (fun (_, heard) ->
      Alcotest.(check (list int)) "no ping from the silent party"
        [ 0; 1; 2; 3 ] heard)
    report.outputs

let test_crash_strategy_on_async () =
  (* adaptive corruption under the async engine: the view's round is the
     event counter, so crash@r3 fells its victim at delivery event 3; the
     victim's in-flight init pings were sent while honest and still arrive *)
  let report =
    Async_engine.run ~n:5 ~t:1
      ~reactor:(gather_reactor ~quota:5)
      ~adversary:
        (Async_engine.with_scheduler (Strategies.crash ~at_round:3 ~victims:[ 0 ]))
      ()
  in
  Alcotest.(check (list (pair int int)))
    "corruption event recorded" [ (0, 3) ] report.corruption_rounds;
  check_int "remaining honest parties all decide" 4
    (List.length report.outputs)

(* --- differential execution: one protocol, both engines -------------- *)

let scheduler_of = function
  | 0 -> Async_engine.Fifo
  | 1 -> Async_engine.Lifo
  | _ -> Async_engine.Random_order

(* RealAA run natively under the sync engine vs lifted into the async
   engine by the round-simulation adapter: honest outputs AND decision
   rounds must match bit for bit — under any scheduler, because the
   lock-step simulation is delivery-order-invariant. *)
let prop_differential_realaa =
  QCheck2.Test.make
    ~name:"differential: RealAA sync vs round-simulated async" ~count:25
    QCheck2.Gen.(
      triple (int_bound 1_000_000) (int_range 4 8) (int_bound 2))
    (fun (seed, n, sched) ->
      let rng = Rng.create seed in
      let t = Rng.int rng (((n - 1) / 3) + 1) in
      let values = Array.init n (fun _ -> float_of_int (Rng.int rng 1000)) in
      let iterations = 2 + Rng.int rng 2 in
      let protocol () =
        Aat_realaa.Bdh.protocol
          ~inputs:(fun i -> values.(i))
          ~t ~iterations ()
      in
      let sync_report =
        Sync_engine.run ~n ~t ~protocol:(protocol ())
          ~adversary:(Adversary.passive "none")
          ()
      in
      let async_report =
        Async_engine.run ~n ~t ~seed ~max_events:100_000
          ~reactor:(Round_sim.reactor_of_protocol (protocol ()))
          ~adversary:(Async_engine.passive ~scheduler:(scheduler_of sched) "none")
          ()
      in
      List.map (fun (p, (o, _)) -> (p, o)) async_report.outputs
      = sync_report.outputs
      && List.map (fun (p, (_, r)) -> (p, r)) async_report.outputs
         = sync_report.termination_rounds)

(* Bracha run natively under the async engine vs folded into lock-step
   rounds by the converse adapter: same deliveries, same values, and the
   round structure collapses to the textbook three rounds. *)
let prop_differential_bracha =
  QCheck2.Test.make ~name:"differential: Bracha async vs sync rounds"
    ~count:30
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 4 10))
    (fun (seed, n) ->
      let t = (n - 1) / 3 in
      let inputs self = 100 + self in
      let sender = seed mod n in
      let reactor () = Bracha.reactor ~sender ~inputs ~t in
      let async_report =
        Async_engine.run ~n ~t ~seed
          ~reactor:(reactor ())
          ~adversary:
            (Async_engine.passive ~scheduler:(scheduler_of (seed mod 3)) "none")
          ()
      in
      let sync_report =
        Sync_engine.run ~n ~t ~max_rounds:8
          ~protocol:(Round_sim.protocol_of_reactor (reactor ()))
          ~adversary:(Adversary.passive "none")
          ()
      in
      sync_report.outputs = async_report.outputs
      && List.length sync_report.outputs = n
      && List.for_all (fun (_, r) -> r = 3) sync_report.termination_rounds)

(* determinism of the lift itself: two async runs of the simulated
   protocol under different schedulers agree with each other *)
let test_round_sim_scheduler_invariance () =
  let values = [| 3.; 99.; 41.; 7.; 60. |] in
  let run scheduler seed =
    Async_engine.run ~n:5 ~t:1 ~seed
      ~reactor:
        (Round_sim.reactor_of_protocol
           (Aat_realaa.Bdh.protocol
              ~inputs:(fun i -> values.(i))
              ~t:1 ~iterations:3 ()))
      ~adversary:(Async_engine.passive ~scheduler "none")
      ()
  in
  let a = run Async_engine.Fifo 1 in
  let b = run Async_engine.Lifo 2 in
  let c = run Async_engine.Random_order 3 in
  check "fifo = lifo" true (a.outputs = b.outputs);
  check "fifo = random" true (a.outputs = c.outputs)

let () =
  Alcotest.run "runtime"
    [
      ( "defaults",
        [
          Alcotest.test_case "formulas" `Quick test_default_formulas;
          Alcotest.test_case "sync engine reads max_rounds" `Quick
            test_sync_engine_reads_default_max_rounds;
          Alcotest.test_case "async engine reads patience" `Quick
            test_async_engine_reads_default_patience;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "dedup + inbox order" `Quick
            test_mailbox_dedup_and_inbox_order;
          Alcotest.test_case "forgery screening" `Quick test_mailbox_screen;
        ] );
      ( "parity",
        [
          Alcotest.test_case "both engines count forgeries identically" `Quick
            test_forgery_count_parity;
        ] );
      ( "unified-adversary",
        [
          Alcotest.test_case "silent strategy, async engine" `Quick
            test_silent_strategy_on_async;
          Alcotest.test_case "adaptive crash, async engine" `Quick
            test_crash_strategy_on_async;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential_realaa;
          QCheck_alcotest.to_alcotest prop_differential_bracha;
          Alcotest.test_case "round-sim scheduler invariance" `Quick
            test_round_sim_scheduler_invariance;
        ] );
    ]
