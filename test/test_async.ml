(* Tests for the asynchronous substrate: the event engine, Bracha reliable
   broadcast, and witness-based iterated AA (real-valued and on trees). *)

open Aat_engine
open Aat_async
open Aat_tree
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- engine basics: a ping protocol counting what it hears --- *)

type ping_state = { mutable heard : int list; n : int }

let gather_reactor ~quota : (ping_state, int, int list) Async_engine.reactor =
  {
    name = "gather";
    init =
      (fun ~self ~n ->
        ({ heard = []; n }, List.init n (fun p -> (p, self))));
    on_message =
      (fun ~self:_ e st ->
        st.heard <- e.payload :: st.heard;
        (st, []));
    output =
      (fun st -> if List.length st.heard >= quota then Some (List.sort compare st.heard) else None);
  }

let test_engine_delivers_everything () =
  List.iter
    (fun scheduler ->
      let report =
        Async_engine.run ~n:5 ~t:0 ~reactor:(gather_reactor ~quota:5)
          ~adversary:(Async_engine.passive ~scheduler "none")
          ()
      in
      check_int "all honest decided" 5 (List.length report.outputs);
      List.iter
        (fun (_, heard) -> Alcotest.(check (list int)) "heard all" [ 0; 1; 2; 3; 4 ] heard)
        report.outputs)
    [ Async_engine.Fifo; Async_engine.Lifo; Async_engine.Random_order ]

let test_engine_patience_beats_starvation () =
  (* the laggard scheduler starves party 0's messages; patience must force
     them through so everyone still hears 5 of 5 *)
  let report =
    Async_engine.run ~n:5 ~t:0 ~patience:10
      ~reactor:(gather_reactor ~quota:5)
      ~adversary:(Async_engine.passive ~scheduler:(Async_engine.Laggards [ 0 ]) "laggard")
      ()
  in
  List.iter
    (fun (_, heard) -> Alcotest.(check (list int)) "heard all" [ 0; 1; 2; 3; 4 ] heard)
    report.outputs

let test_engine_rejects_forged_injections () =
  (* unified interface: the async adversary is a sync-style core plus a
     scheduler; its view's [round] is the delivery-event counter *)
  let adversary =
    Async_engine.with_scheduler
      (Adversary.static ~name:"forger"
         ~pick:(fun ~n:_ ~t:_ _ -> [ 4 ])
         ~deliver:(fun view ->
           if view.Adversary.round = 1 then
             { Types.src = 0; dst = 1; body = 999 } (* forged: honest src *)
             :: List.init view.Adversary.n (fun dst ->
                    { Types.src = 4; dst; body = 444 })
           else []))
  in
  let report =
    Async_engine.run ~n:5 ~t:1 ~reactor:(gather_reactor ~quota:5) ~adversary ()
  in
  check_int "forgery rejected" 1 report.rejected_forgeries;
  check_int "injections accepted" 5 report.adversary_messages;
  (* party 1 heard: 4 honest pings (0..3; byz 4 sends nothing itself) + 444 *)
  Alcotest.(check (list int)) "inbox" [ 0; 1; 2; 3; 444 ] (List.assoc 1 report.outputs)

let test_engine_liveness_failure_detected () =
  check "deadlock raises" true
    (try
       ignore
         (Async_engine.run ~n:3 ~t:0 ~max_events:100
            ~reactor:(gather_reactor ~quota:99)
            ~adversary:(Async_engine.passive "none")
            ());
       false
     with Async_engine.Exceeded_max_events _ -> true)

let test_engine_determinism () =
  let run () =
    Async_engine.run ~n:6 ~t:0 ~seed:42
      ~reactor:(gather_reactor ~quota:6)
      ~adversary:(Async_engine.passive ~scheduler:Async_engine.Random_order "rand")
      ()
  in
  let a = run () and b = run () in
  check "same events" true (a.rounds_used = b.rounds_used);
  check "same outputs" true (a.outputs = b.outputs)

(* --- Bracha reliable broadcast --- *)

let bracha_inputs self = 100 + self

let test_bracha_honest_sender () =
  List.iter
    (fun scheduler ->
      let report =
        Async_engine.run ~n:7 ~t:2
          ~reactor:(Bracha.reactor ~sender:0 ~inputs:bracha_inputs ~t:2)
          ~adversary:(Async_engine.passive ~scheduler "none")
          ()
      in
      check_int "everyone delivers" 7 (List.length report.outputs);
      List.iter (fun (_, v) -> check_int "the value" 100 v) report.outputs)
    [ Async_engine.Fifo; Async_engine.Lifo; Async_engine.Random_order ]

let test_bracha_silent_sender_no_delivery () =
  let adversary =
    Async_engine.with_scheduler
      (Adversary.static ~name:"silent-sender"
         ~pick:(fun ~n:_ ~t:_ _ -> [ 0 ])
         ~deliver:(fun _ -> []))
  in
  check "no delivery, liveness exception" true
    (try
       ignore
         (Async_engine.run ~n:7 ~t:2 ~max_events:500
            ~reactor:(Bracha.reactor ~sender:0 ~inputs:bracha_inputs ~t:2)
            ~adversary ());
       false
     with Async_engine.Exceeded_max_events _ -> true)

(* Equivocating Byzantine sender: conflicting INITs to the two halves, a
   helper echoing one side. Agreement and totality must hold regardless of
   scheduling. *)
let equivocating_sender ~scheduler =
  let key = { Bracha.origin = 6; tag = 0 } in
  Async_engine.with_scheduler ~scheduler
    (Adversary.static ~name:"equivocator"
       ~pick:(fun ~n:_ ~t:_ _ -> [ 5; 6 ])
       ~deliver:(fun view ->
         let n = view.Adversary.n in
         if view.Adversary.round = 1 then
           List.concat
             [
               List.init n (fun dst ->
                   let v = if dst < 3 then 111 else 222 in
                   { Types.src = 6; dst; body = Bracha.Init (key, v) });
               (* the helper echoes 111 to everyone *)
               List.init n (fun dst ->
                   { Types.src = 5; dst; body = Bracha.Echo (key, 111) });
             ]
         else []))

let test_bracha_equivocator_agreement () =
  (* Some runs deliver 111 everywhere, some deliver nothing before the
     event budget: both are fine; what must never happen is two honest
     parties delivering different values. *)
  List.iter
    (fun (scheduler, seed) ->
      match
        Async_engine.run ~n:7 ~t:2 ~seed ~max_events:3_000
          ~reactor:(Bracha.reactor ~sender:6 ~inputs:bracha_inputs ~t:2)
          ~adversary:(equivocating_sender ~scheduler)
          ()
      with
      | report ->
          (* totality: engine only returns when ALL honest delivered *)
          check_int "all or none" 5 (List.length report.outputs);
          let values = List.sort_uniq compare (List.map snd report.outputs) in
          check "agreement" true (List.length values <= 1)
      | exception Async_engine.Exceeded_max_events _ -> ())
    [
      (Async_engine.Fifo, 1); (Async_engine.Lifo, 2);
      (Async_engine.Random_order, 3); (Async_engine.Random_order, 4);
      (Async_engine.Laggards [ 0; 1 ], 5);
    ]

(* --- async AA on reals --- *)

(* the unified report lets the sync-world verdict checker consume async
   runs directly *)
let async_real_verdict values report ~eps =
  Verdict.real_of_report ~eps
    ~inputs:(fun i -> values.(i))
    ~value:(fun (r : float Async_aa.result) -> r.value)
    report

let test_async_real_converges () =
  let values = [| 0.; 100.; 20.; 60.; 40.; 90.; 10. |] in
  let iterations = Aat_realaa.Rounds.halving_iterations ~range:100. ~eps:1. in
  List.iter
    (fun scheduler ->
      let report =
        Async_engine.run ~n:7 ~t:2
          ~reactor:(Async_aa.real ~inputs:(fun i -> values.(i)) ~t:2 ~iterations)
          ~adversary:(Async_engine.passive ~scheduler "none")
          ()
      in
      check "verdict" true (Verdict.all_ok (async_real_verdict values report ~eps:1.)))
    [ Async_engine.Fifo; Async_engine.Lifo; Async_engine.Random_order ]

let test_async_real_with_silent_byz () =
  (* two corrupted parties never participate: quorums are n - t, so the
     protocol must stay live *)
  let values = [| 0.; 100.; 20.; 60.; 40.; 90.; 10. |] in
  let iterations = Aat_realaa.Rounds.halving_iterations ~range:100. ~eps:1. in
  let adversary =
    Async_engine.with_scheduler ~scheduler:Async_engine.Random_order
      (Adversary.static ~name:"silent"
         ~pick:(fun ~n:_ ~t:_ _ -> [ 5; 6 ])
         ~deliver:(fun _ -> []))
  in
  let report =
    Async_engine.run ~n:7 ~t:2
      ~reactor:(Async_aa.real ~inputs:(fun i -> values.(i)) ~t:2 ~iterations)
      ~adversary ()
  in
  check "verdict" true (Verdict.all_ok (async_real_verdict values report ~eps:1.))

let test_async_real_laggard_scheduler () =
  let values = [| 0.; 100.; 20.; 60.; 40.; 90.; 10. |] in
  let iterations = Aat_realaa.Rounds.halving_iterations ~range:100. ~eps:1. in
  let report =
    Async_engine.run ~n:7 ~t:2 ~patience:200
      ~reactor:(Async_aa.real ~inputs:(fun i -> values.(i)) ~t:2 ~iterations)
      ~adversary:
        (Async_engine.passive ~scheduler:(Async_engine.Laggards [ 0; 1 ]) "lag")
      ()
  in
  check "verdict" true (Verdict.all_ok (async_real_verdict values report ~eps:1.))

(* Byzantine parties injecting random protocol messages (malformed reports,
   junk RBC traffic, equivocating broadcasts of their own instances). *)
let random_async_byz ~seed =
  let rng = Rng.create seed in
  Async_engine.with_scheduler ~scheduler:Async_engine.Random_order
    (Adversary.static ~name:"random-async-byz"
       ~pick:(fun ~n:_ ~t:_ _ -> [ 5; 6 ])
       ~deliver:(fun view ->
         let step = view.Adversary.round and n = view.Adversary.n in
         if step > 600 || step mod 3 <> 0 then []
         else
           let src = if Rng.bool rng then 5 else 6 in
           let key = { Bracha.origin = src; tag = 1 + Rng.int rng 8 } in
           let junk_value () = float_of_int (Rng.int rng 1000) -. 200. in
           List.init n (fun dst ->
               let body =
                 match Rng.int rng 5 with
                 | 0 -> Async_aa.Rbc (Bracha.Init (key, junk_value ()))
                 | 1 -> Async_aa.Rbc (Bracha.Echo (key, junk_value ()))
                 | 2 -> Async_aa.Rbc (Bracha.Ready (key, junk_value ()))
                 | 3 ->
                     Async_aa.Report
                       { iteration = 1 + Rng.int rng 8; ids = [ 0; 1 ] }
                       (* malformed: too small *)
                 | _ ->
                     Async_aa.Report
                       {
                         iteration = 1 + Rng.int rng 8;
                         ids = List.init (n - 2) Fun.id;
                       }
               in
               { Types.src; dst; body })))

let prop_async_real_random_byz =
  QCheck2.Test.make ~name:"async AA under random byzantine injections"
    ~count:25
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let values = Array.init 7 (fun _ -> float_of_int (Rng.int rng 500)) in
      let iterations = Aat_realaa.Rounds.halving_iterations ~range:500. ~eps:1. in
      let report =
        Async_engine.run ~n:7 ~t:2 ~seed ~max_events:500_000
          ~reactor:(Async_aa.real ~inputs:(fun i -> values.(i)) ~t:2 ~iterations)
          ~adversary:(random_async_byz ~seed)
          ()
      in
      Verdict.all_ok (async_real_verdict values report ~eps:1.))

(* --- async AA on trees ([33]) --- *)

let async_tree_verdict tree inputs report =
  let honest_inputs =
    Array.to_list (Array.mapi (fun i v -> (i, v)) inputs)
    |> List.filter_map (fun (i, v) ->
           if List.mem i report.Async_engine.corrupted then None else Some v)
  in
  let honest_outputs =
    List.map
      (fun (_, (r : Labeled_tree.vertex Async_aa.result)) -> r.value)
      report.Async_engine.outputs
  in
  Aat_treeaa.Tree_verdict.check ~tree ~n_honest:(List.length honest_inputs)
    ~honest_inputs ~honest_outputs

let test_async_tree_on_fig3 () =
  let tree =
    Labeled_tree.of_labeled_edges
      [ ("v1", "v2"); ("v2", "v3"); ("v3", "v6"); ("v3", "v7");
        ("v2", "v4"); ("v4", "v8"); ("v2", "v5") ]
  in
  let v l = Labeled_tree.vertex_of_label tree l in
  let inputs = [| v "v3"; v "v6"; v "v5"; v "v8"; v "v1"; v "v7"; v "v4" |] in
  let iterations = Aat_treeaa.Nr_baseline.iterations_for tree in
  let report =
    Async_engine.run ~n:7 ~t:2
      ~reactor:
        (Async_aa.tree ~tree ~inputs:(fun i -> inputs.(i)) ~t:2 ~iterations)
      ~adversary:(Async_engine.passive ~scheduler:Async_engine.Random_order "none")
      ()
  in
  check "verdict" true (Verdict.all_ok (async_tree_verdict tree inputs report))

let test_async_tree_long_path () =
  let tree = Generate.path 200 in
  let inputs = [| 0; 199; 50; 120; 75; 30; 160 |] in
  let iterations = Aat_treeaa.Nr_baseline.iterations_for tree in
  let adversary =
    Async_engine.with_scheduler ~scheduler:Async_engine.Lifo
      (Adversary.static ~name:"silent"
         ~pick:(fun ~n:_ ~t:_ _ -> [ 5; 6 ])
         ~deliver:(fun _ -> []))
  in
  let report =
    Async_engine.run ~n:7 ~t:2
      ~reactor:
        (Async_aa.tree ~tree ~inputs:(fun i -> inputs.(i)) ~t:2 ~iterations)
      ~adversary ()
  in
  check "verdict" true (Verdict.all_ok (async_tree_verdict tree inputs report))

let prop_async_tree_random =
  QCheck2.Test.make ~name:"async tree AA on random trees" ~count:20
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 40))
    (fun (seed, nv) ->
      let rng = Rng.create seed in
      let tree = Generate.random rng nv in
      let inputs = Array.init 7 (fun _ -> Rng.int rng nv) in
      let iterations = Aat_treeaa.Nr_baseline.iterations_for tree in
      let report =
        Async_engine.run ~n:7 ~t:2 ~seed
          ~reactor:
            (Async_aa.tree ~tree ~inputs:(fun i -> inputs.(i)) ~t:2 ~iterations)
          ~adversary:
            (Async_engine.passive ~scheduler:Async_engine.Random_order "none")
          ()
      in
      Verdict.all_ok (async_tree_verdict tree inputs report))

let () =
  Alcotest.run "async"
    [
      ( "engine",
        [
          Alcotest.test_case "delivers under all schedulers" `Quick
            test_engine_delivers_everything;
          Alcotest.test_case "patience beats starvation" `Quick
            test_engine_patience_beats_starvation;
          Alcotest.test_case "forged injections rejected" `Quick
            test_engine_rejects_forged_injections;
          Alcotest.test_case "liveness failure detected" `Quick
            test_engine_liveness_failure_detected;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
        ] );
      ( "bracha",
        [
          Alcotest.test_case "honest sender" `Quick test_bracha_honest_sender;
          Alcotest.test_case "silent sender: no delivery" `Quick
            test_bracha_silent_sender_no_delivery;
          Alcotest.test_case "equivocator: agreement + totality" `Quick
            test_bracha_equivocator_agreement;
        ] );
      ( "async-aa-real",
        [
          Alcotest.test_case "converges under all schedulers" `Quick
            test_async_real_converges;
          Alcotest.test_case "silent byz" `Quick test_async_real_with_silent_byz;
          Alcotest.test_case "laggard scheduler" `Quick
            test_async_real_laggard_scheduler;
          QCheck_alcotest.to_alcotest prop_async_real_random_byz;
        ] );
      ( "async-aa-tree",
        [
          Alcotest.test_case "fig3" `Quick test_async_tree_on_fig3;
          Alcotest.test_case "long path, LIFO, silent byz" `Quick
            test_async_tree_long_path;
          QCheck_alcotest.to_alcotest prop_async_tree_random;
        ] );
    ]
