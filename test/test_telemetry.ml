(* Tests for the telemetry layer: the stats sink's per-round aggregates must
   reconstruct the engine report exactly, convergence snapshots must witness
   the contraction the paper proves, the JSONL sink's output must round-trip
   through the parser, and the null sink must be observably absent. *)

open Treeagree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* fixtures *)

(* A pool of adversaries spanning the strategies the suite uses elsewhere:
   the telemetry invariants must hold against any of them. *)
let adversary_of ~n ~t idx =
  if t = 0 then Adversary.passive "none"
  else
    match idx mod 4 with
    | 0 -> Adversary.passive "none"
    | 1 -> Strategies.silent ~victims:(List.init t (fun i -> n - 1 - i))
    | 2 -> Strategies.crash ~at_round:2 ~victims:(List.init t (fun i -> i))
    | _ -> Strategies.random_silent ~count:t

let random_instance seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 7 in
  let t = Rng.int rng (((n - 1) / 3) + 1) in
  let tree = Generate.random rng (2 + Rng.int rng 18) in
  let inputs = Array.init n (fun _ -> Rng.int rng (Tree.n_vertices tree)) in
  let adversary = adversary_of ~n ~t (Rng.int rng 4) in
  (n, t, tree, inputs, adversary)

let run_with_stats seed =
  let _, t, tree, inputs, adversary = random_instance seed in
  let stats = Telemetry.Stats.create () in
  let report =
    Tree_aa.run ~seed ~tree ~inputs ~t ~adversary
      ~telemetry:(Telemetry.Stats.sink stats) ()
  in
  (stats, report)

(* ------------------------------------------------------------------ *)
(* property: the stats sink reconstructs the report *)

let prop_stats_match_report =
  QCheck2.Test.make ~name:"stats sink sums equal the engine report" ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let stats, report = run_with_stats seed in
      Telemetry.Stats.total_honest stats = report.Engine.honest_messages
      && Telemetry.Stats.total_adversary stats
         = report.Engine.adversary_messages
      && Telemetry.Stats.rounds stats >= report.Engine.rounds_used
      && (* within each round, per-party attribution is complete *)
      List.for_all
        (fun (e : Telemetry.event) ->
          Array.fold_left ( + ) 0 e.sent_by
          = e.honest_msgs + e.adversary_msgs)
        (Telemetry.Stats.events stats)
      && (* the summary line carries the same totals *)
      match Telemetry.Stats.summary stats with
      | None -> false
      | Some s ->
          s.honest_messages = report.Engine.honest_messages
          && s.adversary_messages = report.Engine.adversary_messages)

(* property: honest-hull diameter never grows round over round (Lemma 6:
   honest values stay within the honest range; the trimmed mean contracts) *)
let prop_convergence_monotone =
  QCheck2.Test.make ~name:"convergence series monotonically non-increasing"
    ~count:60
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let stats, _ = run_with_stats seed in
      let spreads = List.map snd (Telemetry.Stats.convergence stats) in
      let rec mono = function
        | a :: (b :: _ as rest) -> b <= a +. 1e-9 && mono rest
        | _ -> true
      in
      mono spreads)

(* ------------------------------------------------------------------ *)
(* golden run: JSONL round-trips and reconstructs the report *)

let golden_jsonl () =
  let tree = Generate.path 8 in
  let inputs = [| 0; 7; 3; 5; 1; 6; 2 |] in
  let t = 2 in
  let path = Filename.temp_file "treeagree" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let outcome =
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Quick.agree ~tree ~inputs ~t
              ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
              ~telemetry:(Telemetry.Jsonl.sink oc) ())
      in
      let lines =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | line -> go (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            go [])
      in
      (outcome, lines))

let parse line =
  match Telemetry.Json.of_string line with
  | Ok json -> json
  | Error msg -> Alcotest.failf "unparseable JSONL line %S: %s" line msg

let str_field name json =
  match Telemetry.Json.(Option.bind (member name json) to_str) with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %s" name

let int_field name json =
  match Telemetry.Json.(Option.bind (member name json) to_int) with
  | Some i -> i
  | None -> Alcotest.failf "missing int field %s" name

let test_jsonl_round_trip () =
  let outcome, lines = golden_jsonl () in
  let report = outcome.Quick.report in
  check "has start, rounds, stop" true (List.length lines >= 3);
  let jsons = List.map parse lines in
  (* first line: the run metadata, stamped with the format version *)
  let start = List.hd jsons in
  Alcotest.(check string) "start line" "start" (str_field "type" start);
  Alcotest.(check string) "format version stamped"
    Telemetry.format_version_string
    (str_field "format_version" start);
  check "own version accepted" true
    (Result.is_ok (Telemetry.check_format_version start));
  check_int "n" 7 (int_field "n" start);
  check_int "t" 2 (int_field "t" start);
  Alcotest.(check string) "protocol" "tree-aa" (str_field "protocol" start);
  (* last line: the summary, matching the report *)
  let stop = List.nth jsons (List.length jsons - 1) in
  Alcotest.(check string) "stop line" "stop" (str_field "type" stop);
  check_int "stop honest total" report.Engine.honest_messages
    (int_field "honest_messages" stop);
  check_int "stop adversary total" report.Engine.adversary_messages
    (int_field "adversary_messages" stop);
  (* middle lines: rounds, contiguous from 1, sums matching the report *)
  let rounds =
    List.filter (fun j -> str_field "type" j = "round") jsons
  in
  check_int "everything in between is a round" (List.length jsons - 2)
    (List.length rounds);
  List.iteri
    (fun i j -> check_int "rounds contiguous from 1" (i + 1) (int_field "round" j))
    rounds;
  check_int "per-round honest sums to report"
    report.Engine.honest_messages
    (List.fold_left (fun acc j -> acc + int_field "honest_msgs" j) 0 rounds);
  check_int "per-round adversary sums to report"
    report.Engine.adversary_messages
    (List.fold_left (fun acc j -> acc + int_field "adversary_msgs" j) 0 rounds)

(* ------------------------------------------------------------------ *)
(* the null sink is free: a telemetered run is the same run *)

let test_null_sink_identical_report () =
  let tree = Generate.caterpillar ~spine:6 ~legs:2 in
  let inputs = [| 2; 9; 4; 11; 0; 7; 3 |] in
  let run telemetry =
    (Quick.agree ~seed:3 ~tree ~inputs ~t:2
       ~adversary:(Strategies.random_silent ~count:2)
       ?telemetry ())
      .Quick.report
  in
  let bare = run None in
  let nulled = run (Some Telemetry.Sink.null) in
  let stats = Telemetry.Stats.create () in
  let sunk = run (Some (Telemetry.Stats.sink stats)) in
  List.iter
    (fun (name, r) ->
      check (name ^ ": outputs") true (r.Engine.outputs = bare.Engine.outputs);
      check
        (name ^ ": termination rounds")
        true
        (r.Engine.termination_rounds = bare.Engine.termination_rounds);
      check_int (name ^ ": rounds used") bare.Engine.rounds_used
        r.Engine.rounds_used;
      check (name ^ ": corrupted") true
        (r.Engine.corrupted = bare.Engine.corrupted);
      check
        (name ^ ": corruption rounds")
        true
        (r.Engine.corruption_rounds = bare.Engine.corruption_rounds);
      check_int (name ^ ": honest messages") bare.Engine.honest_messages
        r.Engine.honest_messages;
      check_int (name ^ ": adversary messages") bare.Engine.adversary_messages
        r.Engine.adversary_messages;
      check_int
        (name ^ ": rejected forgeries")
        bare.Engine.rejected_forgeries r.Engine.rejected_forgeries)
    [ ("null sink", nulled); ("stats sink", sunk) ]

(* ------------------------------------------------------------------ *)
(* probes: gradecast grades and the phase-2 barrier mark come through *)

let test_probe_grades_and_marks () =
  let tree = Generate.path 10 in
  let inputs = [| 0; 9; 4; 6; 2; 8; 1 |] in
  let stats = Telemetry.Stats.create () in
  let _ =
    Quick.agree ~tree ~inputs ~t:2
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ~telemetry:(Telemetry.Stats.sink stats) ()
  in
  let g0, g1, g2 = Telemetry.Stats.grade_totals stats in
  check "some gradecasts graded" true (g0 + g1 + g2 > 0);
  check "honest leaders reach grade 2" true (g2 > 0);
  check "phase-2 barrier marked" true
    (List.exists
       (fun (e : Telemetry.event) -> List.mem_assoc "phase2-entered" e.marks)
       (Telemetry.Stats.events stats));
  check "snapshots collected" true
    (List.exists
       (fun (e : Telemetry.event) -> e.snapshot <> [])
       (Telemetry.Stats.events stats))

(* ------------------------------------------------------------------ *)
(* tee: both branches observe the run *)

let test_tee_sink () =
  let a = Telemetry.Stats.create () in
  let b = Telemetry.Stats.create () in
  let tree = Generate.star 12 in
  let _ =
    Quick.agree ~tree ~inputs:[| 1; 4; 7; 10 |] ~t:1
      ~telemetry:
        (Telemetry.Sink.tee (Telemetry.Stats.sink a) (Telemetry.Stats.sink b))
      ()
  in
  check "tee branches agree" true
    (Telemetry.Stats.events a = Telemetry.Stats.events b);
  check "tee saw rounds" true (Telemetry.Stats.rounds a > 0)

(* ------------------------------------------------------------------ *)
(* async engine: chunked events still account for every message *)

let test_async_stats () =
  let stats = Telemetry.Stats.create () in
  let reactor =
    Async_aa.real ~inputs:(fun i -> float_of_int (10 * i)) ~t:1 ~iterations:3
  in
  let report =
    Async_engine.run ~n:4 ~t:1 ~reactor
      ~adversary:(Async_engine.passive "fifo")
      ~telemetry:(Telemetry.Stats.sink stats)
      ~telemetry_stride:64 ()
  in
  check_int "chunk totals = honest messages" report.Async_engine.honest_messages
    (Telemetry.Stats.total_honest stats);
  check_int "chunk totals = injected" report.Async_engine.adversary_messages
    (Telemetry.Stats.total_adversary stats);
  check "chunks emitted" true (Telemetry.Stats.rounds stats > 0);
  check "chunk indices contiguous from 1" true
    (List.mapi (fun i _ -> i + 1) (Telemetry.Stats.events stats)
    = List.map
        (fun (e : Telemetry.event) -> e.round)
        (Telemetry.Stats.events stats));
  match Telemetry.Stats.meta stats with
  | Some m -> Alcotest.(check string) "engine tag" "async" m.Telemetry.engine
  | None -> Alcotest.fail "no start event"

(* ------------------------------------------------------------------ *)
(* the JSON codec itself *)

let test_json_codec () =
  let sample =
    Telemetry.Json.(
      Obj
        [
          ("s", Str "a\"b\\c\nd\te\u{00e9}");
          ("i", Num 42.);
          ("f", Num 1.5);
          ("neg", Num (-7.));
          ("null", Null);
          ("yes", Bool true);
          ("arr", Arr [ Num 1.; Str "x"; Arr []; Obj [] ]);
        ])
  in
  let round_tripped =
    match Telemetry.Json.of_string (Telemetry.Json.to_string sample) with
    | Ok j -> j
    | Error e -> Alcotest.failf "round trip failed: %s" e
  in
  check "codec round trip" true (round_tripped = sample);
  check "trailing garbage rejected" true
    (Result.is_error (Telemetry.Json.of_string "{\"a\":1} x"));
  check "unterminated string rejected" true
    (Result.is_error (Telemetry.Json.of_string "\"abc"));
  check "bare word rejected" true
    (Result.is_error (Telemetry.Json.of_string "nulls"));
  check "unicode escape" true
    (Telemetry.Json.of_string "\"\\u0041\"" = Ok (Telemetry.Json.Str "A"))

(* property: the codec inverts on arbitrary values — every control
   character escapes, every finite float survives the %.17g rendering,
   arbitrary nesting parses back *)

let json_gen =
  let open QCheck2.Gen in
  let str =
    string_size ~gen:(map Char.chr (int_range 0 127)) (int_bound 12)
  in
  let num =
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        oneofl
          [
            0.; -0.; 1.5; -2.25; 3.141592653589793; 1e-9; 6.02e23;
            1.7976931348623157e308; 2.2250738585072014e-308;
          ];
      ]
  in
  sized_size (int_bound 5)
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return Telemetry.Json.Null;
               map (fun b -> Telemetry.Json.Bool b) bool;
               map (fun f -> Telemetry.Json.Num f) num;
               map (fun s -> Telemetry.Json.Str s) str;
             ]
         in
         if n = 0 then leaf
         else
           oneof
             [
               leaf;
               map
                 (fun l -> Telemetry.Json.Arr l)
                 (list_size (int_bound 4) (self (n / 2)));
               map
                 (fun kvs -> Telemetry.Json.Obj kvs)
                 (list_size (int_bound 4) (pair str (self (n / 2))));
             ])

let prop_json_codec_inverts =
  QCheck2.Test.make ~name:"json codec inverts on arbitrary values" ~count:500
    json_gen
    (fun v ->
      match Telemetry.Json.of_string (Telemetry.Json.to_string v) with
      | Ok v' -> v' = v
      | Error e -> QCheck2.Test.fail_reportf "reparse failed: %s" e)

let test_json_deep_nesting () =
  let deep =
    let rec go n acc =
      if n = 0 then acc
      else go (n - 1) (Telemetry.Json.Obj [ ("child", Telemetry.Json.Arr [ acc ]) ])
    in
    go 100 (Telemetry.Json.Str "leaf")
  in
  check "100-deep nesting round trips" true
    (Telemetry.Json.of_string (Telemetry.Json.to_string deep) = Ok deep)

let test_json_malformed_rejected () =
  List.iter
    (fun s ->
      check (Printf.sprintf "rejects %S" s) true
        (Result.is_error (Telemetry.Json.of_string s)))
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "{\"a\" 1}";
      "{\"a\":1,}";
      "\"\\q\"";
      "\"\\u12\"";
      "tru";
      "[1 2]";
      "{1:2}";
    ]

(* the reader's version gate, on hand-written headers *)
let test_format_version_gate () =
  let header fields =
    Telemetry.Json.Obj (("type", Telemetry.Json.Str "start") :: fields)
  in
  check "missing field accepted (pre-versioning writer)" true
    (Result.is_ok (Telemetry.check_format_version (header [])));
  check "newer minor of our major accepted" true
    (Result.is_ok
       (Telemetry.check_format_version
          (header [ ("format_version", Telemetry.Json.Str "1.99") ])));
  check "unknown major rejected" true
    (Result.is_error
       (Telemetry.check_format_version
          (header [ ("format_version", Telemetry.Json.Str "2.0") ])));
  check "non-string version rejected" true
    (Result.is_error
       (Telemetry.check_format_version
          (header [ ("format_version", Telemetry.Json.Num 1.) ])));
  check "malformed version rejected" true
    (Result.is_error
       (Telemetry.check_format_version
          (header [ ("format_version", Telemetry.Json.Str "one.zero") ])))

let () =
  Alcotest.run "telemetry"
    [
      ( "stats",
        [
          QCheck_alcotest.to_alcotest prop_stats_match_report;
          QCheck_alcotest.to_alcotest prop_convergence_monotone;
          Alcotest.test_case "probe grades and marks" `Quick
            test_probe_grades_and_marks;
          Alcotest.test_case "tee" `Quick test_tee_sink;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "golden round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "json codec" `Quick test_json_codec;
          QCheck_alcotest.to_alcotest prop_json_codec_inverts;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          Alcotest.test_case "malformed rejected" `Quick
            test_json_malformed_rejected;
          Alcotest.test_case "format version gate" `Quick
            test_format_version_gate;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "null sink identical report" `Quick
            test_null_sink_identical_report;
        ] );
      ( "async",
        [ Alcotest.test_case "chunked stats" `Quick test_async_stats ] );
    ]
