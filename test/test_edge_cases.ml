(* Edge-case sweep across the protocol stack: minimal configurations,
   degenerate inputs, and cross-protocol consistency properties. *)

open Aat_tree
open Aat_engine
open Aat_treeaa
open Aat_realaa
module LT = Labeled_tree
module Strategies = Aat_adversary.Strategies
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tree_verdict ~tree inputs (report : (_, _) Sync_engine.report) =
  let initially = Sync_engine.initially_corrupted report in
  let hull_inputs =
    Array.to_list (Array.mapi (fun i x -> (i, x)) inputs)
    |> List.filter_map (fun (i, x) ->
           if List.mem i initially then None else Some x)
  in
  Tree_verdict.check ~tree
    ~n_honest:(Array.length inputs - List.length report.corrupted)
    ~honest_inputs:hull_inputs
    ~honest_outputs:(Sync_engine.honest_outputs report)

(* --- minimal configurations --- *)

let test_tree_aa_minimal_n4_t1 () =
  let tree = Generate.path 30 in
  let inputs = [| 0; 29; 10; 20 |] in
  let report =
    Tree_aa.run ~tree ~inputs ~t:1 ~adversary:(Strategies.silent ~victims:[ 3 ]) ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_tree_aa_t_zero () =
  let tree = Generate.random (Rng.create 5) 25 in
  let inputs = [| 3; 17; 9 |] in
  let report = Tree_aa.run ~tree ~inputs ~t:0 ~adversary:(Adversary.passive "none") () in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_tree_aa_single_party () =
  let tree = Generate.path 10 in
  let report =
    Tree_aa.run ~tree ~inputs:[| 7 |] ~t:0 ~adversary:(Adversary.passive "none") ()
  in
  (* one party: output must be its own input (validity with a single honest
     input pins the hull to {7}) *)
  Alcotest.(check (list int)) "own input" [ 7 ] (Sync_engine.honest_outputs report)

let test_tree_aa_identical_inputs () =
  (* all honest parties hold the same vertex: the hull is a single vertex,
     so every output must be exactly it *)
  let tree = Generate.caterpillar ~spine:10 ~legs:2 in
  let inputs = Array.make 7 13 in
  let report =
    Tree_aa.run ~tree ~inputs ~t:2 ~adversary:(Strategies.silent ~victims:[ 5; 6 ]) ()
  in
  List.iter
    (fun o -> check_int "pinned" 13 o)
    (Sync_engine.honest_outputs report);
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree inputs report))

let test_tree_aa_adjacent_inputs () =
  (* honest inputs already 1-close: outputs must stay within their hull
     (the two vertices) *)
  let tree = Generate.path 50 in
  let inputs = [| 20; 21; 20; 21; 20; 0; 49 |] in
  let report =
    Tree_aa.run ~tree ~inputs ~t:2 ~adversary:(Strategies.silent ~victims:[ 5; 6 ]) ()
  in
  List.iter
    (fun o -> check "within the edge" true (o = 20 || o = 21))
    (Sync_engine.honest_outputs report)

let test_path_aa_two_vertices () =
  let path = Generate.path 2 in
  let inputs = [| 0; 1; 0; 1 |] in
  let protocol = Path_aa.protocol ~path ~inputs:(fun i -> inputs.(i)) ~t:1 in
  let report =
    Sync_engine.run ~n:4 ~t:1 ~max_rounds:(max 1 (Path_aa.rounds ~path))
      ~protocol ~adversary:(Adversary.passive "none") ()
  in
  check "verdict" true (Verdict.all_ok (tree_verdict ~tree:path inputs report))

let test_paths_finder_identical_inputs () =
  (* all honest hold v: RealAA returns exactly v's index, so every path is
     exactly P(root, v) *)
  let tree = Generate.balanced ~arity:2 ~depth:3 in
  let target = 11 in
  let inputs = Array.make 7 target in
  let protocol = Paths_finder.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t:2 in
  let report =
    Sync_engine.run ~n:7 ~t:2
      ~max_rounds:(max 1 (Paths_finder.rounds ~tree))
      ~protocol
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in
  let rooted = Rooted.make tree in
  let expected = Array.of_list (Rooted.path_to_root rooted target) in
  List.iter
    (fun p -> check "exact path" true (p = expected))
    (Sync_engine.honest_outputs report)

(* --- engine corner cases --- *)

let test_engine_n1 () =
  let tree = LT.singleton "x" in
  let report =
    Tree_aa.run ~tree ~inputs:[| 0 |] ~t:0 ~adversary:(Adversary.passive "none") ()
  in
  check_int "instant" 0 report.rounds_used

let test_gradecast_all_leaders_simultaneously () =
  (* n parallel instances in one Multi: each leader's value lands at grade 2
     everywhere when all are honest *)
  let n = 6 and t = 1 in
  let protocol leader =
    Aat_gradecast.Gradecast.protocol ~leader
      ~inputs:(fun i -> float_of_int (i * i))
      ~t
  in
  List.iter
    (fun leader ->
      let report =
        Sync_engine.run ~n ~t ~max_rounds:3 ~protocol:(protocol leader)
          ~adversary:(Adversary.passive "none") ()
      in
      List.iter
        (fun (r : float Aat_gradecast.Gradecast.result) ->
          check "grade 2" true (r.grade = Aat_gradecast.Gradecast.G2);
          check "value" true (r.value = Some (float_of_int (leader * leader))))
        (Sync_engine.honest_outputs report))
    [ 0; 3; 5 ]

(* --- trim / mean properties --- *)

let prop_trimmed_mean_within_trimmed_range =
  QCheck2.Test.make ~name:"trimmed mean inside trimmed range" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_range 5 25) (float_bound_inclusive 100.)) (int_range 0 3))
    (fun (values, t) ->
      QCheck2.assume (List.length values > 2 * t);
      match (Trim.trimmed_mean ~t values, Trim.range (Trim.trimmed ~t values)) with
      | Some m, Some (lo, hi) -> m >= lo -. 1e-9 && m <= hi +. 1e-9
      | _ -> false)

let prop_mean_midpoint_agree_on_pairs =
  QCheck2.Test.make ~name:"mean = midpoint on 2-element windows" ~count:200
    QCheck2.Gen.(pair (float_bound_inclusive 50.) (float_bound_inclusive 50.))
    (fun (a, b) ->
      Trim.mean [ a; b ] = Trim.midpoint [ a; b ])

(* --- cross-protocol consistency: all four tree protocols agree with the
   spec on the same instance --- *)

let prop_all_protocols_valid_on_same_instance =
  QCheck2.Test.make ~name:"TreeAA and NR baseline both satisfy Definition 2"
    ~count:25
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 3 30))
    (fun (seed, nv) ->
      let rng = Rng.create seed in
      let tree = Generate.random rng nv in
      let inputs = Array.init 7 (fun _ -> Rng.int rng nv) in
      let r1 =
        Tree_aa.run ~seed ~tree ~inputs ~t:2
          ~adversary:(Strategies.random_silent ~count:2) ()
      in
      let r2 =
        Nr_baseline.run ~seed ~tree ~inputs ~t:2
          ~adversary:(Strategies.random_silent ~count:2) ()
      in
      Verdict.all_ok (tree_verdict ~tree inputs r1)
      && Verdict.all_ok (tree_verdict ~tree inputs r2))

(* --- rounds formulas: cross-consistency of paths_finder and tree_aa --- *)

let test_rounds_consistency () =
  List.iter
    (fun nv ->
      let tree = Generate.path nv in
      let d = Metrics.diameter tree in
      check "TreeAA = barrier + phase2" true
        (Tree_aa.rounds ~tree
        = max 1 (Paths_finder.rounds ~tree)
          + Rounds.bdh_rounds ~range:(float_of_int d) ~eps:1.))
    [ 3; 10; 100; 1000 ];
  (* trivial trees: 0 rounds *)
  check_int "singleton" 0 (Tree_aa.rounds ~tree:(LT.singleton "x"));
  check_int "edge" 0 (Tree_aa.rounds ~tree:(Generate.path 2))

(* --- the simple projection wrappers --- *)
let test_simple_wrappers () =
  let values = [| 0.; 10.; 20.; 30. |] in
  let report =
    Sync_engine.run ~n:4 ~t:1 ~max_rounds:6
      ~protocol:(Bdh.simple ~inputs:(fun i -> values.(i)) ~t:1 ~iterations:2)
      ~adversary:(Adversary.passive "none") ()
  in
  check "bdh simple outputs floats in range" true
    (List.for_all (fun v -> v >= 0. && v <= 30.) (Sync_engine.honest_outputs report));
  let report2 =
    Sync_engine.run ~n:4 ~t:1 ~max_rounds:5
      ~protocol:
        (Iterated_midpoint.naive_simple ~inputs:(fun i -> values.(i)) ~t:1
           ~iterations:5)
      ~adversary:(Adversary.passive "none") ()
  in
  check "naive simple converges" true
    (Verdict.spread (Sync_engine.honest_outputs report2) <= 30. /. 32.)

(* --- gradecast-based midpoint baseline at the resilience boundary --- *)

let test_gc_midpoint_wedge_boundary () =
  let n = 6 and t = 2 in
  let values = [| 0.; 0.; 64.; 64.; 0.; 64. |] in
  let report =
    Sync_engine.run ~n ~t ~max_rounds:60
      ~protocol:
        (Iterated_midpoint.with_gradecast
           ~inputs:(fun i -> values.(i))
           ~t ~iterations:10)
      ~adversary:(Aat_adversary.Wedge.gradecast_wedge ())
      ()
  in
  let outputs =
    List.map
      (fun (r : Iterated_midpoint.result) -> r.value)
      (Sync_engine.honest_outputs report)
  in
  check "broken at n=3t" true (Verdict.spread outputs > 1.)

(* --- Path AA and known-path AA agree on path input spaces --- *)

let prop_path_aa_matches_known_path =
  QCheck2.Test.make
    ~name:"Path AA = known-path AA when the tree is its own path" ~count:30
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 3 60))
    (fun (seed, k) ->
      let path_tree = Generate.path k in
      let rng = Rng.create seed in
      let inputs = Array.init 7 (fun _ -> Rng.int rng k) in
      let full_path = Path_aa.canonical_order path_tree in
      let run protocol =
        Sync_engine.run ~n:7 ~t:2 ~seed
          ~max_rounds:(max 1 (Path_aa.rounds ~path:path_tree))
          ~protocol
          ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
          ()
      in
      let r1 = run (Path_aa.protocol ~path:path_tree ~inputs:(fun i -> inputs.(i)) ~t:2) in
      let r2 =
        run
          (Known_path_aa.protocol ~tree:path_tree ~path:full_path
             ~inputs:(fun i -> inputs.(i))
             ~t:2)
      in
      (* On a path, projection is the identity, so the two protocols run the
         same RealAA instance and must output identically. *)
      Sync_engine.honest_outputs r1 = Sync_engine.honest_outputs r2)

let () =
  Alcotest.run "edge-cases"
    [
      ( "minimal-configs",
        [
          Alcotest.test_case "n=4 t=1" `Quick test_tree_aa_minimal_n4_t1;
          Alcotest.test_case "t=0" `Quick test_tree_aa_t_zero;
          Alcotest.test_case "single party" `Quick test_tree_aa_single_party;
          Alcotest.test_case "identical inputs" `Quick
            test_tree_aa_identical_inputs;
          Alcotest.test_case "adjacent inputs" `Quick
            test_tree_aa_adjacent_inputs;
          Alcotest.test_case "2-vertex path AA" `Quick test_path_aa_two_vertices;
          Alcotest.test_case "PathsFinder identical inputs" `Quick
            test_paths_finder_identical_inputs;
          Alcotest.test_case "n=1" `Quick test_engine_n1;
          Alcotest.test_case "gradecast all leaders" `Quick
            test_gradecast_all_leaders_simultaneously;
        ] );
      ( "numeric-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_trimmed_mean_within_trimmed_range;
            prop_mean_midpoint_agree_on_pairs;
            prop_all_protocols_valid_on_same_instance;
          ] );
      ( "boundaries",
        [
          Alcotest.test_case "gradecast midpoint wedge at n=3t" `Quick
            test_gc_midpoint_wedge_boundary;
          QCheck_alcotest.to_alcotest prop_path_aa_matches_known_path;
        ] );
      ( "wrappers",
        [ Alcotest.test_case "simple projections" `Quick test_simple_wrappers ] );
      ( "schedules",
        [ Alcotest.test_case "rounds consistency" `Quick test_rounds_consistency ] );
    ]
