(* Tests for ListConstruction (Euler tour) — the Lemma 2 properties — and
   for LCA queries built on it (Lemma 2, property 4 / reference [8]). *)

open Aat_tree
module LT = Labeled_tree
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig3 () =
  LT.of_labeled_edges
    [
      ("v1", "v2");
      ("v2", "v3");
      ("v3", "v6");
      ("v3", "v7");
      ("v2", "v4");
      ("v4", "v8");
      ("v2", "v5");
    ]

let tour_of t = Euler_tour.compute (Rooted.make t)

(* The paper's worked example (Section 6): for Figure 3's tree rooted at v1,
   L = [v1, v2, v3, v6, v3, v7, v3, v2, v4, v8, v4, v2, v5, v2, v1]. *)
let test_fig3_list () =
  let t = fig3 () in
  let tour = tour_of t in
  let got = Array.to_list (Array.map (LT.label t) (Euler_tour.tour tour)) in
  Alcotest.(check (list string)) "paper example"
    [ "v1"; "v2"; "v3"; "v6"; "v3"; "v7"; "v3"; "v2"; "v4"; "v8"; "v4"; "v2"; "v5"; "v2"; "v1" ]
    got

let test_fig3_occurrences () =
  let t = fig3 () in
  let tour = tour_of t in
  let v l = LT.vertex_of_label t l in
  (* Paper gives 1-based L(v3) = {3,5,7}, L(v6) = {4}, L(v5) = {13},
     L(v4) = {9,11}, L(v8) = {10}; ours are 0-based. *)
  Alcotest.(check (list int)) "L(v3)" [ 2; 4; 6 ] (Euler_tour.occurrences tour (v "v3"));
  Alcotest.(check (list int)) "L(v6)" [ 3 ] (Euler_tour.occurrences tour (v "v6"));
  Alcotest.(check (list int)) "L(v5)" [ 12 ] (Euler_tour.occurrences tour (v "v5"));
  Alcotest.(check (list int)) "L(v4)" [ 8; 10 ] (Euler_tour.occurrences tour (v "v4"));
  Alcotest.(check (list int)) "L(v8)" [ 9 ] (Euler_tour.occurrences tour (v "v8"))

let test_singleton_tour () =
  let t = LT.singleton "x" in
  let tour = tour_of t in
  check_int "length 1" 1 (Euler_tour.length tour);
  check_int "L_0" 0 (Euler_tour.vertex_at tour 0)

let test_length_formula () =
  List.iter
    (fun t ->
      let tour = tour_of t in
      check_int "2n-1" ((2 * LT.n_vertices t) - 1) (Euler_tour.length tour))
    [ fig3 (); Generate.path 17; Generate.star 9; Generate.balanced ~arity:3 ~depth:3 ]

(* Lemma 2 property checkers, used both on fixed trees and in properties. *)

let property1_adjacent t tour =
  let len = Euler_tour.length tour in
  let ok = ref true in
  for i = 0 to len - 2 do
    if not (LT.adjacent t (Euler_tour.vertex_at tour i) (Euler_tour.vertex_at tour (i + 1)))
    then ok := false
  done;
  !ok

let property2_all_present t tour =
  Euler_tour.length tour <= 2 * LT.n_vertices t
  && List.for_all (fun v -> Euler_tour.occurrences tour v <> []) (LT.vertices t)

let property3_subtree_brackets t tour =
  let r = Euler_tour.rooted tour in
  let ok = ref true in
  List.iter
    (fun v ->
      let imin = Euler_tour.first_occurrence tour v in
      let imax = Euler_tour.last_occurrence tour v in
      List.iter
        (fun u ->
          let inside =
            List.for_all (fun i -> imin <= i && i <= imax) (Euler_tour.occurrences tour u)
          in
          if inside <> Rooted.in_subtree r ~root_of:v u then ok := false)
        (LT.vertices t))
    (LT.vertices t);
  !ok

let property4_lca_between t tour =
  let lca = Lca.build tour in
  let r = Euler_tour.rooted tour in
  (* reference LCA: deepest common vertex of the two root paths *)
  let ref_lca a b =
    let pa = Rooted.path_to_root r a and pb = Rooted.path_to_root r b in
    let rec go last = function
      | x :: xs, y :: ys when x = y -> go x (xs, ys)
      | _ -> last
    in
    go (Rooted.root r) (pa, pb)
  in
  let ok = ref true in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let w = ref_lca a b in
          if Lca.query lca a b <> w then ok := false;
          (* property 4: between ANY occurrences, the lca occurs *)
          List.iter
            (fun i ->
              List.iter
                (fun j ->
                  let lo = min i j and hi = max i j in
                  let found = ref false in
                  for k = lo to hi do
                    if Euler_tour.vertex_at tour k = w then found := true
                  done;
                  if not !found then ok := false)
                (Euler_tour.occurrences tour b))
            (Euler_tour.occurrences tour a))
        (LT.vertices t))
    (LT.vertices t);
  !ok

let test_lemma2_fig3 () =
  let t = fig3 () in
  let tour = tour_of t in
  check "property 1" true (property1_adjacent t tour);
  check "property 2" true (property2_all_present t tour);
  check "property 3" true (property3_subtree_brackets t tour);
  check "property 4 + lca" true (property4_lca_between t tour)

let test_lca_basics () =
  let t = fig3 () in
  let tour = tour_of t in
  let lca = Lca.build tour in
  let v l = LT.vertex_of_label t l in
  check_int "lca(v6,v7)" (v "v3") (Lca.query lca (v "v6") (v "v7"));
  check_int "lca(v6,v8)" (v "v2") (Lca.query lca (v "v6") (v "v8"));
  check_int "lca(v3,v6)" (v "v3") (Lca.query lca (v "v3") (v "v6"));
  check_int "lca(v,v)" (v "v5") (Lca.query lca (v "v5") (v "v5"));
  check_int "lca with root" (v "v1") (Lca.query lca (v "v1") (v "v8"))

let test_range_min_vertex () =
  let t = fig3 () in
  let tour = tour_of t in
  let lca = Lca.build tour in
  let v l = LT.vertex_of_label t l in
  (* between index 3 (v6) and 12 (v5) the shallowest vertex is v2 *)
  check_int "range min" (v "v2") (Lca.range_min_vertex lca 3 12);
  check_int "range min single" (v "v6") (Lca.range_min_vertex lca 3 3);
  check_int "range min swapped args" (v "v2") (Lca.range_min_vertex lca 12 3)

(* Exhaustive check of Lemma 2 on every labeled tree with <= 6 vertices. *)
let test_lemma2_exhaustive_small () =
  for n = 1 to 6 do
    Prufer.enumerate ~n
    |> Seq.iter (fun edges ->
           let labels = Generate.labels_of_size n in
           let t =
             if n = 1 then LT.singleton labels.(0)
             else
               LT.of_labeled_edges
                 (List.map (fun (u, v) -> (labels.(u), labels.(v))) edges)
           in
           let tour = tour_of t in
           if
             not
               (property1_adjacent t tour && property2_all_present t tour
              && property3_subtree_brackets t tour)
           then Alcotest.failf "Lemma 2 violated on %a" LT.pp t)
  done

let tree_gen =
  QCheck2.Gen.(
    map2
      (fun seed n ->
        let rng = Rng.create seed in
        Generate.random rng (max 1 n))
      (int_bound 1_000_000) (int_bound 30))

let prop_lemma2_random =
  QCheck2.Test.make ~name:"Lemma 2 on random trees" ~count:150 tree_gen
    (fun t ->
      let tour = tour_of t in
      property1_adjacent t tour && property2_all_present t tour
      && property3_subtree_brackets t tour)

let prop_lca_random =
  QCheck2.Test.make ~name:"LCA matches reference on random trees" ~count:60
    tree_gen (fun t -> property4_lca_between t (tour_of t))

let prop_first_occurrence_is_min =
  QCheck2.Test.make ~name:"first/last occurrence consistent" ~count:100
    tree_gen (fun t ->
      let tour = tour_of t in
      List.for_all
        (fun v ->
          let occ = Euler_tour.occurrences tour v in
          Euler_tour.first_occurrence tour v = List.hd occ
          && Euler_tour.last_occurrence tour v = List.nth occ (List.length occ - 1)
          && List.for_all (fun i -> Euler_tour.vertex_at tour i = v) occ)
        (LT.vertices t))

let () =
  Alcotest.run "euler"
    [
      ( "list-construction",
        [
          Alcotest.test_case "paper Figure 3 list" `Quick test_fig3_list;
          Alcotest.test_case "paper Figure 3 occurrences" `Quick
            test_fig3_occurrences;
          Alcotest.test_case "singleton" `Quick test_singleton_tour;
          Alcotest.test_case "length = 2n-1" `Quick test_length_formula;
          Alcotest.test_case "Lemma 2 on fig3" `Quick test_lemma2_fig3;
          Alcotest.test_case "Lemma 2 exhaustive (n<=6)" `Slow
            test_lemma2_exhaustive_small;
        ] );
      ( "lca",
        [
          Alcotest.test_case "basic queries" `Quick test_lca_basics;
          Alcotest.test_case "range_min_vertex" `Quick test_range_min_vertex;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lemma2_random; prop_lca_random; prop_first_occurrence_is_min ] );
    ]
