(* Tests for the simulated-signature substrate and accountable broadcast
   (the authenticated-setting note of Section 7). *)

open Aat_engine
open Aat_auth
module Strategies = Aat_adversary.Strategies
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- signatures --- *)

let test_sign_roundtrip () =
  let ring = Auth.Keyring.setup ~n:4 in
  let k2 = Auth.Keyring.key ring 2 in
  let s = Auth.sign k2 "hello" in
  Alcotest.(check string) "data" "hello" (Auth.data s);
  check_int "signer" 2 (Auth.signer s);
  check_int "key signer" 2 (Auth.Keyring.signer k2)

let test_conflict_detection () =
  let ring = Auth.Keyring.setup ~n:4 in
  let k = Auth.Keyring.key ring 1 in
  let a = Auth.sign k 10 and b = Auth.sign k 20 and c = Auth.sign k 10 in
  check "different data conflicts" true (Auth.conflict a b);
  check "same data no conflict" false (Auth.conflict a c);
  let k3 = Auth.Keyring.key ring 3 in
  check "different signers no conflict" false (Auth.conflict a (Auth.sign k3 20))

(* --- accountable broadcast --- *)

let ring7 = Auth.Keyring.setup ~n:7

let run_broadcast ~adversary ~t inputs =
  let protocol =
    Auth.Accountable.protocol ~keyring:ring7 ~inputs:(fun i -> inputs.(i))
  in
  let report = Sync_engine.run ~n:7 ~t ~max_rounds:3 ~protocol ~adversary () in
  Sync_engine.honest_outputs report

let test_honest_senders_accepted () =
  let inputs = [| 10; 20; 30; 40; 50; 60; 70 |] in
  let outcomes = run_broadcast ~adversary:(Adversary.passive "none") ~t:0 inputs in
  check_int "all honest" 7 (List.length outcomes);
  List.iter
    (fun per_sender ->
      Array.iteri
        (fun sender outcome ->
          match outcome with
          | Auth.Accountable.Accepted s ->
              check "value" true (Auth.data s = inputs.(sender));
              check_int "signer" sender (Auth.signer s)
          | Auth.Accountable.Missing | Auth.Accountable.Convicted _ ->
              Alcotest.fail "honest sender not accepted")
        per_sender)
    outcomes

let test_silent_sender_missing () =
  let inputs = [| 10; 20; 30; 40; 50; 60; 70 |] in
  let outcomes =
    run_broadcast ~adversary:(Strategies.silent ~victims:[ 6 ]) ~t:2 inputs
  in
  List.iter
    (fun per_sender ->
      match per_sender.(6) with
      | Auth.Accountable.Missing -> ()
      | _ -> Alcotest.fail "silent sender should be Missing")
    outcomes

(* A sender signing two different values to two halves: everyone must either
   convict it or at least never accept different values. *)
let equivocator ~victim ~keyring =
  let key = Auth.Keyring.key keyring victim in
  {
    Adversary.name = "signed-equivocator";
    passive = false;
    initial_corruptions = (fun ~n:_ ~t:_ _ -> [ victim ]);
    corrupt_more = (fun _ -> []);
    deliver =
      (fun view ->
        if view.Adversary.round = 1 then
          List.init view.Adversary.n (fun dst ->
              let v = if dst < view.Adversary.n / 2 then 111 else 222 in
              { Types.src = victim; dst; body = Auth.Accountable.forge ~key v })
        else [] (* refuses to forward, hiding the evidence *));
  }

let test_equivocator_convicted_or_consistent () =
  let inputs = [| 10; 20; 30; 40; 50; 60; 70 |] in
  let outcomes = run_broadcast ~adversary:(equivocator ~victim:6 ~keyring:ring7) ~t:2 inputs in
  let accepted_values =
    List.filter_map
      (fun per_sender ->
        match per_sender.(6) with
        | Auth.Accountable.Accepted s -> Some (Auth.data s)
        | Auth.Accountable.Missing -> None
        | Auth.Accountable.Convicted (a, b) ->
            check "proof is a real conflict" true (Auth.conflict a b);
            check_int "proof signer" 6 (Auth.signer a);
            None)
      outcomes
  in
  (* value consistency: all accepted values equal *)
  (match accepted_values with
  | [] -> ()
  | v :: rest -> List.iter (fun v' -> check "consistent" true (v = v')) rest);
  (* honest parties cross-forward: here the split announcement reaches both
     halves by round 2, so everyone must in fact convict *)
  List.iter
    (fun per_sender ->
      match per_sender.(6) with
      | Auth.Accountable.Convicted _ -> ()
      | _ -> Alcotest.fail "equivocation with honest forwarding must convict")
    outcomes

(* A selective sender: announces a single value to one party only. Inclusion
   may split (that is the documented gap) but value consistency must hold
   and nobody may convict an equivocation that never happened. *)
let selective ~victim ~keyring =
  let key = Auth.Keyring.key keyring victim in
  {
    Adversary.name = "selective-sender";
    passive = false;
    initial_corruptions = (fun ~n:_ ~t:_ _ -> [ victim ]);
    corrupt_more = (fun _ -> []);
    deliver =
      (fun view ->
        if view.Adversary.round = 1 then
          [ { Types.src = victim; dst = 0; body = Auth.Accountable.forge ~key 99 } ]
        else []);
  }

let test_selective_sender_no_false_conviction () =
  let inputs = [| 10; 20; 30; 40; 50; 60; 70 |] in
  let outcomes = run_broadcast ~adversary:(selective ~victim:6 ~keyring:ring7) ~t:2 inputs in
  let values =
    List.filter_map
      (fun per_sender ->
        match per_sender.(6) with
        | Auth.Accountable.Accepted s -> Some (Auth.data s)
        | Auth.Accountable.Missing -> None
        | Auth.Accountable.Convicted _ ->
            Alcotest.fail "single signed value cannot convict")
      outcomes
  in
  match values with
  | [] -> ()
  | v :: rest ->
      check "the one signed value" true (v = 99);
      List.iter (fun v' -> check "consistent" true (v' = 99)) rest

(* Replaying an honest signature is allowed and harmless: the replayed value
   equals the original, so no conflict arises. *)
let replayer ~keyring:_ =
  let stash = ref [] in
  {
    Adversary.name = "replayer";
    passive = false;
    initial_corruptions = (fun ~n:_ ~t:_ _ -> [ 6 ]);
    corrupt_more = (fun _ -> []);
    deliver =
      (fun view ->
        (* collect honest announcements from the rushing view, replay them
           in round 2 *)
        (if view.Adversary.round = 1 then
           stash :=
             List.filter_map
               (fun (l : _ Types.letter) ->
                 match l.body with
                 | Auth.Accountable.Announce s -> Some s
                 | _ -> None)
               view.honest_outbox);
        if view.Adversary.round = 2 then
          List.init view.Adversary.n (fun dst ->
              {
                Types.src = 6;
                dst;
                body = Auth.Accountable.forward_msg !stash;
              })
        else [])
  }

let test_replay_is_harmless () =
  let inputs = [| 10; 20; 30; 40; 50; 60; 70 |] in
  let outcomes = run_broadcast ~adversary:(replayer ~keyring:ring7) ~t:2 inputs in
  List.iter
    (fun per_sender ->
      for sender = 0 to 5 do
        match per_sender.(sender) with
        | Auth.Accountable.Accepted s ->
            check "original value" true (Auth.data s = inputs.(sender))
        | _ -> Alcotest.fail "replay must not disturb honest senders"
      done)
    outcomes

let prop_random_byz_value_consistency =
  (* randomized adversary: signs random values to random subsets, forwards
     random subsets of what it saw; value consistency and no-false-
     conviction must always hold *)
  QCheck2.Test.make ~name:"accountable broadcast under random byzantine"
    ~count:80
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let keyring = ring7 in
      let key = Auth.Keyring.key keyring 6 in
      let rng = Rng.create seed in
      let adversary =
        {
          Adversary.name = "random-signed";
          passive = false;
          initial_corruptions = (fun ~n:_ ~t:_ _ -> [ 6 ]);
          corrupt_more = (fun _ -> []);
          deliver =
            (fun view ->
              List.filter_map
                (fun dst ->
                  if Rng.bool rng then None
                  else
                    let body =
                      if view.Adversary.round = 1 || Rng.bool rng then
                        Auth.Accountable.forge ~key (Rng.int rng 5)
                      else Auth.Accountable.forward_msg []
                    in
                    Some { Types.src = 6; dst; body })
                (List.init view.Adversary.n Fun.id));
        }
      in
      let inputs = Array.init 7 (fun i -> 1000 + i) in
      let outcomes = run_broadcast ~adversary ~t:2 inputs in
      (* honest senders always accepted with their value *)
      let honest_ok =
        List.for_all
          (fun per_sender ->
            List.for_all
              (fun sender ->
                match per_sender.(sender) with
                | Auth.Accountable.Accepted s -> Auth.data s = inputs.(sender)
                | _ -> false)
              [ 0; 1; 2; 3; 4; 5 ])
          outcomes
      in
      (* byz sender: consistent accepted values; convictions genuine *)
      let byz_values =
        List.filter_map
          (fun per_sender ->
            match per_sender.(6) with
            | Auth.Accountable.Accepted s -> Some (Auth.data s)
            | Auth.Accountable.Missing -> None
            | Auth.Accountable.Convicted (a, b) ->
                if Auth.conflict a b && Auth.signer a = 6 then None
                else Some (-1) (* poison: invalid proof *))
          outcomes
      in
      let consistent =
        match byz_values with
        | [] -> true
        | v :: rest -> v >= 0 && List.for_all (( = ) v) rest
      in
      honest_ok && consistent)

let () =
  Alcotest.run "auth"
    [
      ( "signatures",
        [
          Alcotest.test_case "sign roundtrip" `Quick test_sign_roundtrip;
          Alcotest.test_case "conflict detection" `Quick test_conflict_detection;
        ] );
      ( "accountable-broadcast",
        [
          Alcotest.test_case "honest accepted" `Quick test_honest_senders_accepted;
          Alcotest.test_case "silent missing" `Quick test_silent_sender_missing;
          Alcotest.test_case "equivocator convicted" `Quick
            test_equivocator_convicted_or_consistent;
          Alcotest.test_case "selective: no false conviction" `Quick
            test_selective_sender_no_false_conviction;
          Alcotest.test_case "replay harmless" `Quick test_replay_is_harmless;
          QCheck_alcotest.to_alcotest prop_random_byz_value_consistency;
        ] );
    ]
