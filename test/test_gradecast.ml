(* Tests for gradecast: the three properties (validity, soundness, value
   agreement on grade >= 1) under honest, crashing, equivocating and random
   Byzantine leaders. *)

open Aat_engine
open Aat_gradecast
module Multi = Gradecast.Multi
module Strategies = Aat_adversary.Strategies
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let inputs self = float_of_int (10 * (self + 1))

let run ~n ~t ~leader ~adversary =
  let report =
    Sync_engine.run ~n ~t ~max_rounds:3
      ~protocol:(Gradecast.protocol ~leader ~inputs ~t)
      ~adversary ()
  in
  Sync_engine.honest_outputs report

(* The gradecast properties, as checkers over the honest outcomes. *)
let validity_holds ~leader_value outcomes =
  List.for_all
    (fun (r : float Gradecast.result) ->
      r.grade = Gradecast.G2 && r.value = Some leader_value)
    outcomes

let soundness_holds outcomes =
  let someone_g2 =
    List.exists (fun (r : float Gradecast.result) -> r.grade = Gradecast.G2) outcomes
  in
  (not someone_g2)
  || List.for_all
       (fun (r : float Gradecast.result) -> r.grade <> Gradecast.G0)
       outcomes

let value_agreement_holds outcomes =
  let values =
    List.filter_map (fun (r : float Gradecast.result) -> r.value) outcomes
  in
  match values with [] -> true | v :: vs -> List.for_all (( = ) v) vs

let all_properties outcomes = soundness_holds outcomes && value_agreement_holds outcomes

let test_honest_leader () =
  List.iter
    (fun (n, t) ->
      let outcomes = run ~n ~t ~leader:0 ~adversary:(Adversary.passive "none") in
      check "validity" true (validity_holds ~leader_value:10. outcomes))
    [ (4, 1); (7, 2); (10, 3); (4, 0); (13, 4) ]

let test_honest_leader_with_byz_helpers () =
  (* Leader honest, other parties Byzantine and silent: validity must still
     hold. *)
  let outcomes =
    run ~n:7 ~t:2 ~leader:0 ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
  in
  check "validity despite silent byz" true (validity_holds ~leader_value:10. outcomes)

let test_silent_leader () =
  let outcomes =
    run ~n:7 ~t:2 ~leader:6 ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
  in
  check "all grade 0" true
    (List.for_all
       (fun (r : float Gradecast.result) -> r.grade = Gradecast.G0 && r.value = None)
       outcomes)

let test_equivocating_leader_round1 () =
  (* Leader sends different values to the two halves in round 1, everything
     else honest: soundness and value agreement must survive. *)
  let base = Gradecast.protocol ~leader:6 ~inputs ~t:2 in
  let adversary =
    Strategies.puppeteer ~name:"equivocate" ~protocol:base ~victims:[ 6 ]
      ~twist:(fun ~round ~src:_ ~dst m ->
        match (round, m) with
        | 1, Multi.Value _ -> Some (Multi.Value (if dst < 3 then 1.0 else 2.0))
        | _ -> Some m)
  in
  let outcomes = run ~n:7 ~t:2 ~leader:6 ~adversary in
  check "soundness + agreement" true (all_properties outcomes)

let test_selective_omission_leader () =
  (* Leader sends its value to only n - 2t parties; helpers honest. *)
  let base = Gradecast.protocol ~leader:6 ~inputs ~t:2 in
  let adversary =
    Strategies.puppeteer ~name:"omit" ~protocol:base ~victims:[ 6 ]
      ~twist:(fun ~round ~src:_ ~dst m ->
        match (round, m) with
        | 1, Multi.Value _ -> if dst < 3 then Some m else None
        | _ -> Some m)
  in
  let outcomes = run ~n:7 ~t:2 ~leader:6 ~adversary in
  check "soundness + agreement" true (all_properties outcomes)

let test_lying_echoers () =
  (* Honest leader; Byzantine echoers claim a different value. Validity must
     still hold: honest echo quorum dominates. *)
  let base = Gradecast.protocol ~leader:0 ~inputs ~t:2 in
  let adversary =
    Strategies.puppeteer ~name:"lying-echo" ~protocol:base ~victims:[ 5; 6 ]
      ~twist:(fun ~round:_ ~src:_ ~dst:_ m ->
        match m with
        | Multi.Value _ -> Some m
        | Multi.Echo row -> Some (Multi.Echo (Array.map (Option.map (fun _ -> 999.)) row))
        | Multi.Vote row -> Some (Multi.Vote (Array.map (Option.map (fun _ -> 999.)) row)))
  in
  let outcomes = run ~n:7 ~t:2 ~leader:0 ~adversary in
  check "validity despite lying echoes" true (validity_holds ~leader_value:10. outcomes)

(* Random Byzantine behaviour: corrupted parties send syntactically valid but
   arbitrary messages each round; every gradecast property must hold for
   honest leaders, and soundness/value-agreement for Byzantine ones. *)
let random_forger ~seed =
  let rng = Rng.create seed in
  {
    Adversary.name = "random-forger";
    passive = false;
    initial_corruptions = (fun ~n ~t _ -> List.init t (fun i -> n - t + i));
    corrupt_more = (fun _ -> []);
    deliver =
      (fun view ->
        let byz = Adversary.corrupted_parties view in
        let random_value () = float_of_int (Rng.int rng 100) in
        let random_row () =
          Array.init view.n (fun _ ->
              if Rng.bool rng then Some (random_value ()) else None)
        in
        List.concat_map
          (fun c ->
            List.filter_map
              (fun dst ->
                if Rng.int rng 4 = 0 then None (* sometimes omit *)
                else
                  let body =
                    match Rng.int rng 3 with
                    | 0 -> Multi.Value (random_value ())
                    | 1 -> Multi.Echo (random_row ())
                    | _ -> Multi.Vote (random_row ())
                  in
                  Some { Types.src = c; dst; body })
              (List.init view.n Fun.id))
          byz);
  }

let prop_random_byzantine =
  QCheck2.Test.make ~name:"gradecast properties under random byzantine"
    ~count:120
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 0 2))
    (fun (seed, size_class) ->
      let n, t = List.nth [ (4, 1); (7, 2); (10, 3) ] size_class in
      (* honest leaders: validity; byz leader: soundness + agreement *)
      let honest_outcomes =
        run ~n ~t ~leader:0 ~adversary:(random_forger ~seed)
      in
      let byz_outcomes =
        run ~n ~t ~leader:(n - 1) ~adversary:(random_forger ~seed)
      in
      validity_holds ~leader_value:10. honest_outcomes
      && all_properties byz_outcomes)

let test_rounds_constant () =
  check_int "three rounds" 3 Multi.rounds;
  let report =
    Sync_engine.run ~n:4 ~t:1 ~max_rounds:3
      ~protocol:(Gradecast.protocol ~leader:0 ~inputs ~t:1)
      ~adversary:(Adversary.passive "none") ()
  in
  check_int "terminates in exactly 3" 3 report.rounds_used

let test_grade_utils () =
  check_int "g0" 0 (Gradecast.grade_to_int Gradecast.G0);
  check_int "g1" 1 (Gradecast.grade_to_int Gradecast.G1);
  check_int "g2" 2 (Gradecast.grade_to_int Gradecast.G2)

let () =
  Alcotest.run "gradecast"
    [
      ( "properties",
        [
          Alcotest.test_case "honest leader validity" `Quick test_honest_leader;
          Alcotest.test_case "honest leader, silent byz" `Quick
            test_honest_leader_with_byz_helpers;
          Alcotest.test_case "silent leader" `Quick test_silent_leader;
          Alcotest.test_case "equivocating leader" `Quick
            test_equivocating_leader_round1;
          Alcotest.test_case "selective omission" `Quick
            test_selective_omission_leader;
          Alcotest.test_case "lying echoers" `Quick test_lying_echoers;
          Alcotest.test_case "rounds" `Quick test_rounds_constant;
          Alcotest.test_case "grade utils" `Quick test_grade_utils;
        ] );
      ( "random-byzantine",
        [ QCheck_alcotest.to_alcotest prop_random_byzantine ] );
    ]
