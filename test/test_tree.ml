(* Tests for the labeled-tree substrate: construction, rooted views, paths,
   and metrics. *)

open Aat_tree
module LT = Labeled_tree
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The tree of the paper's Figure 3: v1 at the root, v2 below it, with
   subtrees {v3 -> v6, v7}, {v4 -> v8} and leaf v5. *)
let fig3 () =
  LT.of_labeled_edges
    [
      ("v1", "v2");
      ("v2", "v3");
      ("v3", "v6");
      ("v3", "v7");
      ("v2", "v4");
      ("v4", "v8");
      ("v2", "v5");
    ]

let v t l = LT.vertex_of_label t l

(* --- construction --- *)

let test_singleton () =
  let t = LT.singleton "only" in
  check_int "n" 1 (LT.n_vertices t);
  check_int "root" 0 (LT.root t);
  check "no edges" true (LT.edges t = []);
  check "leaf" true (LT.is_leaf t 0)

let test_vertices_sorted_by_label () =
  let t = LT.of_labeled_edges [ ("b", "a"); ("b", "c") ] in
  Alcotest.(check string) "vertex 0" "a" (LT.label t 0);
  Alcotest.(check string) "vertex 1" "b" (LT.label t 1);
  Alcotest.(check string) "vertex 2" "c" (LT.label t 2);
  check_int "root is lowest label" 0 (LT.root t)

let test_neighbors_sorted () =
  let t = fig3 () in
  let labels = List.map (LT.label t) (LT.neighbors t (v t "v2")) in
  Alcotest.(check (list string)) "sorted" [ "v1"; "v3"; "v4"; "v5" ] labels

let test_reject_cycle () =
  Alcotest.check_raises "cycle" (LT.Invalid_tree "a tree on 3 vertices needs 2 edges, got 3")
    (fun () -> ignore (LT.of_labeled_edges [ ("a", "b"); ("b", "c"); ("c", "a") ]))

let test_reject_disconnected () =
  (* 4 vertices, 3 edges, but one edge duplicated logically via a cycle on
     three of them: a-b, b-c, c-a leaves d isolated. *)
  check "disconnected rejected" true
    (try
       ignore (LT.of_labeled_edges ~isolated:[ "d"; "e" ] [ ("a", "b"); ("d", "e"); ("b", "c") ]);
       false
     with LT.Invalid_tree _ -> true)

let test_reject_self_loop () =
  check "self loop" true
    (try
       ignore (LT.of_labeled_edges [ ("a", "a"); ("a", "b") ]);
       false
     with LT.Invalid_tree _ -> true)

let test_reject_duplicate_edge () =
  check "dup edge" true
    (try
       ignore (LT.of_labeled_edges [ ("a", "b"); ("b", "a") ]);
       false
     with LT.Invalid_tree _ -> true)

let test_of_parents () =
  let t = LT.of_parents ~labels:[| "r"; "x"; "y" |] [| -1; 0; 1 |] in
  check_int "n" 3 (LT.n_vertices t);
  check "r-x" true (LT.adjacent t (v t "r") (v t "x"));
  check "x-y" true (LT.adjacent t (v t "x") (v t "y"));
  check "r-y not adjacent" false (LT.adjacent t (v t "r") (v t "y"))

let test_of_parents_rejects_two_roots () =
  check "two roots" true
    (try
       ignore (LT.of_parents ~labels:[| "a"; "b" |] [| -1; -1 |]);
       false
     with LT.Invalid_tree _ -> true)

let test_equal () =
  check "equal" true (LT.equal (fig3 ()) (fig3 ()));
  check "not equal" false (LT.equal (fig3 ()) (Generate.path 8))

(* --- rooted views --- *)

let test_rooted_parents () =
  let t = fig3 () in
  let r = Rooted.make t in
  check_int "root" (v t "v1") (Rooted.root r);
  check "root has no parent" true (Rooted.parent r (v t "v1") = None);
  check "parent of v8" true (Rooted.parent r (v t "v8") = Some (v t "v4"));
  check_int "depth v8" 3 (Rooted.depth r (v t "v8"));
  check_int "depth v1" 0 (Rooted.depth r (v t "v1"))

let test_rooted_children_order () =
  let t = fig3 () in
  let r = Rooted.make t in
  let kids = List.map (LT.label t) (Rooted.children r (v t "v2")) in
  Alcotest.(check (list string)) "children of v2" [ "v3"; "v4"; "v5" ] kids

let test_is_ancestor () =
  let t = fig3 () in
  let r = Rooted.make t in
  check "v2 anc v8" true (Rooted.is_ancestor r (v t "v2") (v t "v8"));
  check "reflexive" true (Rooted.is_ancestor r (v t "v3") (v t "v3"));
  check "v3 not anc v8" false (Rooted.is_ancestor r (v t "v3") (v t "v8"));
  check "child not anc of parent" false (Rooted.is_ancestor r (v t "v8") (v t "v4"))

let test_subtree_vertices () =
  let t = fig3 () in
  let r = Rooted.make t in
  let sub = List.map (LT.label t) (Rooted.subtree_vertices r (v t "v3")) in
  Alcotest.(check (list string)) "subtree v3" [ "v3"; "v6"; "v7" ] sub;
  let sub1 = Rooted.subtree_vertices r (v t "v1") in
  check_int "whole tree" 8 (List.length sub1)

let test_path_to_root () =
  let t = fig3 () in
  let r = Rooted.make t in
  let p = List.map (LT.label t) (Rooted.path_to_root r (v t "v8")) in
  Alcotest.(check (list string)) "path" [ "v1"; "v2"; "v4"; "v8" ] p

let test_reroot () =
  let t = fig3 () in
  let r = Rooted.make ~root:(v t "v6") t in
  check_int "root" (v t "v6") (Rooted.root r);
  check_int "depth of v1" 3 (Rooted.depth r (v t "v1"))

let test_deep_path_no_stack_overflow () =
  let t = Generate.path 200_000 in
  let r = Rooted.make t in
  check_int "depth of far end" 199_999 (Rooted.depth r 199_999);
  let tour = Euler_tour.compute r in
  check_int "tour length" (2 * 200_000 - 1) (Euler_tour.length tour)

(* --- paths and distances --- *)

let test_path_between () =
  let t = fig3 () in
  let r = Rooted.make t in
  let p = Paths.between r (v t "v6") (v t "v8") in
  let labels = Array.to_list (Array.map (LT.label t) p) in
  Alcotest.(check (list string)) "v6..v8" [ "v6"; "v3"; "v2"; "v4"; "v8" ] labels

let test_path_between_ancestor () =
  let t = fig3 () in
  let r = Rooted.make t in
  let p = Paths.between r (v t "v1") (v t "v8") in
  let labels = Array.to_list (Array.map (LT.label t) p) in
  Alcotest.(check (list string)) "v1..v8" [ "v1"; "v2"; "v4"; "v8" ] labels;
  let q = Paths.between r (v t "v8") (v t "v1") in
  Alcotest.(check (list string)) "reversed"
    [ "v8"; "v4"; "v2"; "v1" ]
    (Array.to_list (Array.map (LT.label t) q))

let test_path_single () =
  let t = fig3 () in
  let r = Rooted.make t in
  let p = Paths.between r (v t "v5") (v t "v5") in
  check_int "singleton path" 1 (Array.length p)

let test_distance () =
  let t = fig3 () in
  let r = Rooted.make t in
  check_int "d(v6,v8)" 4 (Paths.distance r (v t "v6") (v t "v8"));
  check_int "d(v1,v1)" 0 (Paths.distance r (v t "v1") (v t "v1"));
  check_int "d(v6,v7)" 2 (Paths.distance r (v t "v6") (v t "v7"))

let test_is_path () =
  let t = fig3 () in
  let r = Rooted.make t in
  check "real path" true (Paths.is_path t (Paths.between r (v t "v6") (v t "v5")));
  check "not adjacent" false (Paths.is_path t [| v t "v1"; v t "v3" |]);
  check "repeat" false (Paths.is_path t [| v t "v1"; v t "v2"; v t "v1" |]);
  check "empty" false (Paths.is_path t [||])

let test_orient () =
  let t = fig3 () in
  let r = Rooted.make t in
  let p = Paths.between r (v t "v8") (v t "v6") in
  let o = Paths.orient t p in
  Alcotest.(check string) "starts at lower label" "v6" (LT.label t o.(0))

let test_extend_and_index () =
  let t = fig3 () in
  let r = Rooted.make t in
  let p = Paths.between r (v t "v1") (v t "v4") in
  let p' = Paths.extend p (v t "v8") in
  check "extended is path" true (Paths.is_path t p');
  check "mem" true (Paths.mem p' (v t "v8"));
  check "index_of" true (Paths.index_of p' (v t "v8") = Some 3);
  check "index_of missing" true (Paths.index_of p (v t "v7") = None)

(* --- metrics --- *)

let test_diameter_path () =
  check_int "path diameter" 9 (Metrics.diameter (Generate.path 10))

let test_diameter_star () =
  check_int "star diameter" 2 (Metrics.diameter (Generate.star 10))

let test_diameter_singleton () =
  check_int "singleton" 0 (Metrics.diameter (LT.singleton "x"))

let test_diameter_fig3 () =
  check_int "fig3 diameter" 4 (Metrics.diameter (fig3 ()))

let test_longest_path () =
  let t = fig3 () in
  let p = Metrics.longest_path t in
  check_int "length" 5 (Array.length p);
  check "is path" true (Paths.is_path t p)

let test_center_path_even () =
  let t = Generate.path 6 in
  Alcotest.(check (list int)) "two centers" [ 2; 3 ] (Metrics.center t)

let test_center_path_odd () =
  let t = Generate.path 7 in
  Alcotest.(check (list int)) "one center" [ 3 ] (Metrics.center t)

let test_center_star () =
  Alcotest.(check (list int)) "star center" [ 0 ] (Metrics.center (Generate.star 9))

let test_radius () =
  check_int "path radius" 3 (Metrics.radius (Generate.path 7));
  check_int "star radius" 1 (Metrics.radius (Generate.star 9))

let test_eccentricity () =
  let t = fig3 () in
  check_int "ecc v1" 3 (Metrics.eccentricity t (v t "v1"));
  check_int "ecc v6" 4 (Metrics.eccentricity t (v t "v6"));
  check_int "ecc v2" 2 (Metrics.eccentricity t (v t "v2"))

(* --- qcheck properties --- *)

let tree_gen_of_size size =
  QCheck2.Gen.(
    map2
      (fun seed n ->
        let rng = Rng.create seed in
        Generate.random rng (max 1 n))
      (int_bound 1_000_000) (int_bound size))

let arb_tree = tree_gen_of_size 40

let prop_distance_symmetric =
  QCheck2.Test.make ~name:"distance symmetric" ~count:200 arb_tree (fun t ->
      let r = Rooted.make t in
      let n = LT.n_vertices t in
      let ok = ref true in
      for u = 0 to n - 1 do
        for w = u to min (n - 1) (u + 5) do
          if Paths.distance r u w <> Paths.distance r w u then ok := false
        done
      done;
      !ok)

let prop_path_length_matches_distance =
  QCheck2.Test.make ~name:"path length = distance + 1" ~count:200 arb_tree
    (fun t ->
      let r = Rooted.make t in
      let n = LT.n_vertices t in
      let ok = ref true in
      for u = 0 to min (n - 1) 10 do
        for w = 0 to n - 1 do
          let p = Paths.between r u w in
          if Array.length p <> Paths.distance r u w + 1 then ok := false;
          if not (Paths.is_path t p) then ok := false;
          if p.(0) <> u || p.(Array.length p - 1) <> w then ok := false
        done
      done;
      !ok)

let prop_bfs_consistent_with_rooted_distance =
  QCheck2.Test.make ~name:"bfs distances = rooted distances" ~count:100
    arb_tree (fun t ->
      let r = Rooted.make t in
      let n = LT.n_vertices t in
      let src = (n - 1) / 2 in
      let dist = Paths.bfs_distances t src in
      let ok = ref true in
      for u = 0 to n - 1 do
        if dist.(u) <> Paths.distance r src u then ok := false
      done;
      !ok)

let prop_triangle_equality_on_paths =
  (* In a tree, w on P(u,v) iff d(u,w) + d(w,v) = d(u,v). *)
  QCheck2.Test.make ~name:"path membership = metric equality" ~count:100
    arb_tree (fun t ->
      let r = Rooted.make t in
      let n = LT.n_vertices t in
      let u = 0 and w = n / 2 in
      let p = Paths.between r u w in
      let ok = ref true in
      for x = 0 to n - 1 do
        let on_path = Paths.mem p x in
        let metric =
          Paths.distance r u x + Paths.distance r x w = Paths.distance r u w
        in
        if on_path <> metric then ok := false
      done;
      !ok)

let prop_diameter_is_max_eccentricity =
  QCheck2.Test.make ~name:"diameter = max eccentricity" ~count:60
    (tree_gen_of_size 25) (fun t ->
      let eccs = Metrics.all_eccentricities t in
      Metrics.diameter t = Array.fold_left max 0 eccs)

let prop_center_minimizes_eccentricity =
  QCheck2.Test.make ~name:"center = argmin eccentricity" ~count:60
    (tree_gen_of_size 25) (fun t ->
      let eccs = Metrics.all_eccentricities t in
      let m = Array.fold_left min max_int eccs in
      let argmins =
        List.filter (fun v -> eccs.(v) = m) (LT.vertices t)
      in
      Metrics.center t = argmins)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "tree"
    [
      ( "construction",
        [
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "vertices sorted by label" `Quick
            test_vertices_sorted_by_label;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "reject cycle" `Quick test_reject_cycle;
          Alcotest.test_case "reject disconnected" `Quick
            test_reject_disconnected;
          Alcotest.test_case "reject self-loop" `Quick test_reject_self_loop;
          Alcotest.test_case "reject duplicate edge" `Quick
            test_reject_duplicate_edge;
          Alcotest.test_case "of_parents" `Quick test_of_parents;
          Alcotest.test_case "of_parents two roots" `Quick
            test_of_parents_rejects_two_roots;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
      ( "rooted",
        [
          Alcotest.test_case "parents and depths" `Quick test_rooted_parents;
          Alcotest.test_case "children in label order" `Quick
            test_rooted_children_order;
          Alcotest.test_case "is_ancestor" `Quick test_is_ancestor;
          Alcotest.test_case "subtree_vertices" `Quick test_subtree_vertices;
          Alcotest.test_case "path_to_root" `Quick test_path_to_root;
          Alcotest.test_case "reroot" `Quick test_reroot;
          Alcotest.test_case "200k-vertex path, no overflow" `Slow
            test_deep_path_no_stack_overflow;
        ] );
      ( "paths",
        [
          Alcotest.test_case "between" `Quick test_path_between;
          Alcotest.test_case "between ancestor" `Quick
            test_path_between_ancestor;
          Alcotest.test_case "single-vertex path" `Quick test_path_single;
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "is_path" `Quick test_is_path;
          Alcotest.test_case "orient" `Quick test_orient;
          Alcotest.test_case "extend and index" `Quick test_extend_and_index;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "diameter path" `Quick test_diameter_path;
          Alcotest.test_case "diameter star" `Quick test_diameter_star;
          Alcotest.test_case "diameter singleton" `Quick
            test_diameter_singleton;
          Alcotest.test_case "diameter fig3" `Quick test_diameter_fig3;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "center path even" `Quick test_center_path_even;
          Alcotest.test_case "center path odd" `Quick test_center_path_odd;
          Alcotest.test_case "center star" `Quick test_center_star;
          Alcotest.test_case "radius" `Quick test_radius;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
        ] );
      qsuite "properties"
        [
          prop_distance_symmetric;
          prop_path_length_matches_distance;
          prop_bfs_consistent_with_rooted_distance;
          prop_triangle_equality_on_paths;
          prop_diameter_is_max_eccentricity;
          prop_center_minimizes_eccentricity;
        ];
    ]
