(* Tests for the service metrics registry and the span tracer: the
   snapshot codec inverts and renders deterministically, update order
   never changes a snapshot, the null registry is inert and free, the
   deterministic [campaign_*] series are bit-identical for any worker
   count — in-process *and* across the multi-process service under a
   seeded wire-chaos plan — the status file stays parseable under a
   concurrent reader through every atomic rewrite, and the Chrome trace
   the service writes is well-formed (balanced B/E per (pid, tid),
   time-sorted). *)

open Treeagree
module M = Obs_metrics
module Json = Telemetry.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let json_bytes snap = Json.to_string (M.Snapshot.to_json snap)

(* ------------------------------------------------------------------ *)
(* snapshot codec: random snapshots round-trip through JSON *)

let snapshot_gen =
  let open QCheck.Gen in
  let name = oneofl [ "alpha_total"; "beta_seconds"; "gamma"; "delta_total" ] in
  let label = pair (oneofl [ "slot"; "kind"; "grade" ]) (string_size (0 -- 4)) in
  let labels = list_size (0 -- 2) label in
  let value =
    frequency
      [
        (3, map (fun v -> M.Snapshot.Counter (float_of_int v)) (0 -- 1000));
        (2, map (fun v -> M.Snapshot.Gauge (float_of_int v /. 8.)) (0 -- 1000));
        ( 1,
          map2
            (fun counts overflow ->
              M.Snapshot.Histogram
                {
                  bounds = [ 1.; 2.; 4.; 8. ];
                  counts;
                  overflow;
                  sum =
                    List.fold_left ( + ) overflow counts |> float_of_int;
                  count = List.fold_left ( + ) overflow counts;
                })
            (list_repeat 4 (0 -- 50))
            (0 -- 50) );
      ]
  in
  let series =
    map2
      (fun (name, labels) value -> M.Snapshot.series ~labels name value)
      (pair name labels) value
  in
  map M.Snapshot.of_list (list_size (0 -- 12) series)

let codec_round_trip =
  QCheck.Test.make ~count:300 ~name:"snapshot JSON codec inverts"
    (QCheck.make snapshot_gen) (fun snap ->
      match M.Snapshot.of_json (M.Snapshot.to_json snap) with
      | Error e -> QCheck.Test.fail_reportf "of_json: %s" e
      | Ok back ->
          (* value equality and byte equality: the codec must invert and
             the rendering must be canonical *)
          M.Snapshot.equal snap back && String.equal (json_bytes snap) (json_bytes back))

(* ------------------------------------------------------------------ *)
(* registry semantics *)

let test_registry_basics () =
  let reg = M.create () in
  let c = M.counter reg "alpha_total" in
  M.incr c;
  M.add c 4.;
  M.add c (-100.) (* clamped: counters never go down *);
  let g = M.gauge reg ~labels:[ ("slot", "1") ] "beta" in
  M.set g 2.;
  M.max_gauge g 7.;
  M.max_gauge g 3.;
  let h = M.histogram reg ~buckets:[ 1.; 10. ] "gamma" in
  List.iter (M.observe h) [ 0.5; 5.; 50. ];
  let snap = M.snapshot reg in
  let find name =
    List.find (fun s -> s.M.Snapshot.name = name) snap
  in
  (match (find "alpha_total").M.Snapshot.value with
  | M.Snapshot.Counter v -> check_string "counter" "5" (Printf.sprintf "%g" v)
  | _ -> Alcotest.fail "alpha_total not a counter");
  (match (find "beta").M.Snapshot.value with
  | M.Snapshot.Gauge v -> check_string "max gauge" "7" (Printf.sprintf "%g" v)
  | _ -> Alcotest.fail "beta not a gauge");
  (match (find "gamma").M.Snapshot.value with
  | M.Snapshot.Histogram { counts; overflow; count; _ } ->
      check "buckets" true (counts = [ 1; 1 ]);
      check_int "overflow" 1 overflow;
      check_int "count" 3 count
  | _ -> Alcotest.fail "gamma not a histogram");
  (* re-minting the same name/labels hits the same series *)
  M.incr (M.counter reg "alpha_total");
  match (List.find (fun s -> s.M.Snapshot.name = "alpha_total") (M.snapshot reg)).M.Snapshot.value with
  | M.Snapshot.Counter v -> check_string "re-mint" "6" (Printf.sprintf "%g" v)
  | _ -> Alcotest.fail "alpha_total lost"

let test_order_independence () =
  (* the same updates in any order produce byte-identical snapshots *)
  let updates =
    [
      (fun reg -> M.incr (M.counter reg "a_total"));
      (fun reg -> M.add (M.counter reg ~labels:[ ("k", "x") ] "a_total") 3.);
      (fun reg -> M.max_gauge (M.gauge reg "g") 5.);
      (fun reg -> M.max_gauge (M.gauge reg "g") 2.);
      (fun reg -> M.observe (M.histogram reg "h") 3.);
      (fun reg -> M.observe (M.histogram reg "h") 300.);
    ]
  in
  let run order =
    let reg = M.create () in
    List.iter (fun f -> f reg) order;
    json_bytes (M.snapshot reg)
  in
  check_string "reversed order" (run updates) (run (List.rev updates));
  (* labels normalize regardless of mint order *)
  let reg1 = M.create () in
  M.incr (M.counter reg1 ~labels:[ ("a", "1"); ("b", "2") ] "l_total");
  let reg2 = M.create () in
  M.incr (M.counter reg2 ~labels:[ ("b", "2"); ("a", "1") ] "l_total");
  check_string "label order" (json_bytes (M.snapshot reg1))
    (json_bytes (M.snapshot reg2))

let test_null_registry () =
  check "null is null" true (M.is_null M.null);
  check "live is not null" false (M.is_null (M.create ()));
  M.incr (M.counter M.null "x_total");
  M.set (M.gauge M.null "g") 3.;
  M.observe (M.histogram M.null "h") 1.;
  M.record_cell M.null (Error "boom");
  check "null snapshot empty" true (M.snapshot M.null = []);
  (* the span twin obeys the same discipline *)
  let span = Obs_span.enter Obs_span.null "s" in
  check_int "null span id" 0 (Obs_span.id span);
  Obs_span.close Obs_span.null span;
  check "null tracer drains nothing" true (Obs_span.drain Obs_span.null = [])

let test_merge () =
  let s ?labels name v = M.Snapshot.series ?labels name v in
  let left =
    M.Snapshot.of_list
      [ s "c_total" (M.Snapshot.Counter 2.); s "g" (M.Snapshot.Gauge 1.) ]
  in
  let right =
    M.Snapshot.of_list
      [ s "c_total" (M.Snapshot.Counter 3.); s "g" (M.Snapshot.Gauge 4.) ]
  in
  let merged = M.Snapshot.merge left right in
  check "counters sum, gauges max" true
    (merged
    = M.Snapshot.of_list
        [ s "c_total" (M.Snapshot.Counter 5.); s "g" (M.Snapshot.Gauge 4.) ])

let test_prometheus () =
  let reg = M.create () in
  M.incr (M.counter reg ~labels:[ ("grade", "pa\"ss") ] "c_total");
  M.observe (M.histogram reg ~buckets:[ 1.; 2. ] "h") 1.5;
  let prom = M.Snapshot.to_prometheus (M.snapshot reg) in
  let has needle =
    let ln = String.length prom and lf = String.length needle in
    let rec at i = i + lf <= ln && (String.sub prom i lf = needle || at (i + 1)) in
    at 0
  in
  check "TYPE line" true (has "# TYPE c_total counter");
  check "escaped label" true (has "c_total{grade=\"pa\\\"ss\"} 1");
  check "cumulative buckets" true (has "h_bucket{le=\"2\"} 1");
  check "inf bucket" true (has "h_bucket{le=\"+Inf\"} 1");
  check "hist count" true (has "h_count 1")

(* ------------------------------------------------------------------ *)
(* the determinism contract, end to end *)

let spec reps =
  {
    Campaign.Spec.name = "metrics-prop";
    protocol = Campaign.Spec.Tree_aa;
    tree = Campaign.Spec.Random_tree (Campaign.Spec.Between (2, 10));
    n = Campaign.Spec.Between (4, 7);
    t_budget = Campaign.Spec.Up_to_third;
    inputs = Campaign.Spec.Random_vertices;
    adversary = Campaign.Spec.Any_tree_adversary;
    faults = Campaign.Spec.Chaos { intensity = 0.35 };
    watchdogs = true;
    repetitions = reps;
    base_seed = 71;
  }

(* OCaml 5 forbids [Unix.fork] in any process that has ever spawned a
   domain, and the service forks its workers — so the in-process
   multi-worker runs (which spawn Pool domains) happen in a forked
   child, keeping this test process domain-free for the Service.run
   cases. The child ships the snapshot bytes back over a pipe. *)
let in_child f =
  let rd, wr = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let reply = (try f () with e -> "EXN: " ^ Printexc.to_string e) in
      let oc = Unix.out_channel_of_descr wr in
      output_string oc reply;
      flush oc;
      Unix.close wr;
      Unix._exit 0
  | pid ->
      Unix.close wr;
      let ic = Unix.in_channel_of_descr rd in
      let buf = Buffer.create 1024 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      close_in ic;
      ignore (Unix.waitpid [] pid);
      Buffer.contents buf

(* only campaign_* series are in the contract; service/wire series are
   operational (timing, chaos luck, respawn history) *)
let campaign_series snap =
  List.filter
    (fun s ->
      String.length s.M.Snapshot.name >= 9
      && String.sub s.M.Snapshot.name 0 9 = "campaign_")
    snap

let fold_results results =
  let reg = M.create () in
  Array.iter
    (fun (tr : Campaign.task_result) ->
      M.record_cell reg (Result.map Campaign.json_of_outcome tr.Campaign.result))
    results;
  M.snapshot reg

let test_inprocess_bit_identity () =
  let spec = spec 8 in
  let baseline =
    json_bytes (fold_results (Campaign.run ~workers:1 spec).Campaign.results)
  in
  check "baseline has campaign series" true (baseline <> json_bytes []);
  List.iter
    (fun w ->
      let bytes =
        in_child (fun () ->
            json_bytes
              (fold_results (Campaign.run ~workers:w spec).Campaign.results))
      in
      check_string (Printf.sprintf "workers %d" w) baseline bytes)
    [ 2; 4 ]

let test_distributed_bit_identity () =
  let spec = spec 6 in
  let baseline =
    json_bytes
      (campaign_series
         (fold_results (Campaign.run ~workers:1 spec).Campaign.results))
  in
  let plan =
    match Service_chaos.parse "corrupt-frame:0.06+dup-frame:0.04+seed:5" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun w ->
      let reg = M.create () in
      match
        Service.run ~workers:w ~heartbeat_period:0.02 ~wire_chaos:plan
          ~metrics:reg spec
      with
      | Error e -> Alcotest.failf "Service.run (%d workers): %s" w e
      | Ok _ ->
          check_string
            (Printf.sprintf "distributed %d under chaos" w)
            baseline
            (json_bytes (campaign_series (M.snapshot reg))))
    [ 1; 2; 4 ]

let test_metrics_off_neutrality () =
  (* observability off (the default) and on produce the same stream —
     the registry and tracer only observe *)
  let spec = spec 5 in
  let stream run = match run with
    | Ok r -> Service.jsonl_string r
    | Error e -> Alcotest.fail ("Service.run: " ^ e)
  in
  let plain = stream (Service.run ~workers:2 spec) in
  let observed =
    stream (Service.run ~workers:2 ~metrics:(M.create ()) spec)
  in
  check_string "stream unchanged under observation" plain observed;
  check_string "matches in-process too"
    (Campaign.jsonl_string (Campaign.run ~workers:1 spec))
    plain

(* ------------------------------------------------------------------ *)
(* status-file atomicity under a concurrent reader *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_write_atomic () =
  let path = Filename.temp_file "aat-metrics" ".json" in
  M.write_atomic ~path "first\n";
  check_string "first write" "first\n" (read_file path);
  M.write_atomic ~path "second\n";
  check_string "rewrite" "second\n" (read_file path);
  Sys.remove path

let test_status_atomic_under_reader () =
  let path = Filename.temp_file "aat-status" ".json" in
  Sys.remove path (* the service's first atomic write creates it *);
  let stop = Atomic.make false in
  let good = Atomic.make 0 in
  let torn = ref [] in
  let reader =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          (match (try Some (read_file path) with Sys_error _ -> None) with
          | None -> () (* not written yet *)
          | Some bytes -> (
              match Json.of_string (String.trim bytes) with
              | Ok _ -> Atomic.incr good
              | Error e -> torn := e :: !torn));
          Thread.yield ()
        done)
      ()
  in
  let result =
    Service.run ~workers:2 ~heartbeat_period:0.01 ~status_out:path (spec 6)
  in
  Atomic.set stop true;
  Thread.join reader;
  (match result with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("Service.run: " ^ e));
  check "no torn reads" true (!torn = []);
  check "reader saw the file" true (Atomic.get good > 0);
  (* the final rewrite reports completion, and the Prometheus twin
     carries the deterministic cell counter *)
  let json =
    match Json.of_string (String.trim (read_file path)) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("final status: " ^ e)
  in
  let str name = Option.bind (Json.member name json) Json.to_str in
  check "final status completed" true (str "status" = Some "completed");
  let prom = read_file (path ^ ".prom") in
  let has needle =
    let ln = String.length prom and lf = String.length needle in
    let rec at i = i + lf <= ln && (String.sub prom i lf = needle || at (i + 1)) in
    at 0
  in
  check "prom twin" true (has "campaign_cells_total 6");
  Sys.remove path;
  Sys.remove (path ^ ".prom")

(* ------------------------------------------------------------------ *)
(* trace well-formedness *)

let test_trace_well_formed () =
  let path = Filename.temp_file "aat-trace" ".json" in
  (match
     Service.run ~workers:2 ~heartbeat_period:0.02 ~trace_events:path (spec 6)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("Service.run: " ^ e));
  let json =
    match Json.of_string (String.trim (read_file path)) with
    | Ok j -> j
    | Error e -> Alcotest.fail ("trace: " ^ e)
  in
  let events =
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some evs -> evs
    | None -> Alcotest.fail "no traceEvents"
  in
  let fnum name ev = Option.bind (Json.member name ev) Json.to_float in
  let fstr name ev = Option.bind (Json.member name ev) Json.to_str in
  let depth = Hashtbl.create 8 in
  let spans = ref 0 in
  let pids = Hashtbl.create 4 in
  let last_ts = ref neg_infinity in
  List.iter
    (fun ev ->
      let ph = Option.value (fstr "ph" ev) ~default:"?" in
      let ts = Option.value (fnum "ts" ev) ~default:nan in
      if ph <> "M" then begin
        check "time-sorted" true (ts >= !last_ts);
        last_ts := ts
      end;
      Option.iter (fun p -> Hashtbl.replace pids p ()) (fnum "pid" ev);
      let key = (fnum "pid" ev, fnum "tid" ev) in
      let d = try Hashtbl.find depth key with Not_found -> 0 in
      match ph with
      | "B" ->
          Stdlib.incr spans;
          Hashtbl.replace depth key (d + 1)
      | "E" ->
          check "E after B" true (d > 0);
          Hashtbl.replace depth key (d - 1)
      | _ -> ())
    events;
  Hashtbl.iter (fun _ d -> check_int "balanced" 0 d) depth;
  check "has spans" true (!spans > 0);
  (* worker cell spans arrive over the wire under their own pid *)
  check "two processes traced" true (Hashtbl.length pids >= 2);
  Sys.remove path

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "metrics"
    [
      ( "snapshot",
        [
          QCheck_alcotest.to_alcotest codec_round_trip;
          Alcotest.test_case "registry basics" `Quick test_registry_basics;
          Alcotest.test_case "order independence" `Quick test_order_independence;
          Alcotest.test_case "null registry" `Quick test_null_registry;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "in-process workers 1/2/4" `Quick
            test_inprocess_bit_identity;
          Alcotest.test_case "distributed 1/2/4 under wire chaos" `Slow
            test_distributed_bit_identity;
          Alcotest.test_case "metrics-off neutrality" `Slow
            test_metrics_off_neutrality;
        ] );
      ( "exposure",
        [
          Alcotest.test_case "write_atomic" `Quick test_write_atomic;
          Alcotest.test_case "status file under concurrent reader" `Slow
            test_status_atomic_under_reader;
          Alcotest.test_case "trace well-formed" `Slow test_trace_well_formed;
        ] );
    ]
