(* Tests for AA on real values: closestInt (Remarks 1-2), trimming, round
   formulas, the BDH RealAA protocol (Theorem 3 / Lemmas 5-6), the
   iterated-midpoint baselines, and the resilience boundary. *)

open Aat_engine
open Aat_realaa
module Strategies = Aat_adversary.Strategies
module Spoiler = Aat_adversary.Spoiler
module Wedge = Aat_adversary.Wedge
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- closestInt --- *)

let test_closest_int_values () =
  List.iter
    (fun (j, expected) -> check_int (string_of_float j) expected (Closest_int.closest_int j))
    [
      (0., 0); (0.4, 0); (0.5, 1); (0.6, 1); (1.0, 1);
      (3.49, 3); (3.51, 4);
      (-0.4, 0); (-0.5, 0); (-0.6, -1); (-1.2, -1); (-1.5, -1); (-1.51, -2);
    ]

let test_closest_int_nan () =
  check "nan" true
    (try ignore (Closest_int.closest_int Float.nan); false
     with Invalid_argument _ -> true)

let prop_remark1 =
  (* closestInt of j in [imin, imax] stays in [imin, imax] *)
  QCheck2.Test.make ~name:"Remark 1" ~count:500
    QCheck2.Gen.(triple (int_range (-50) 50) (int_bound 100) (float_bound_inclusive 1.))
    (fun (imin, width, frac) ->
      let imax = imin + width in
      let j = float_of_int imin +. (frac *. float_of_int width) in
      let c = Closest_int.closest_int j in
      c >= imin && c <= imax)

let prop_remark2 =
  (* |j - j'| <= 1 implies closestInt differs by at most 1 *)
  QCheck2.Test.make ~name:"Remark 2" ~count:500
    QCheck2.Gen.(pair (float_bound_inclusive 100.) (float_bound_inclusive 1.))
    (fun (j, d) ->
      let j' = j +. d in
      abs (Closest_int.closest_int j - Closest_int.closest_int j') <= 1)

(* --- trim --- *)

let test_trimmed () =
  Alcotest.(check (list (float 0.)))
    "t=1" [ 2.; 3. ]
    (Trim.trimmed ~t:1 [ 3.; 1.; 4.; 2. ]);
  Alcotest.(check (list (float 0.))) "too few" [] (Trim.trimmed ~t:2 [ 1.; 2.; 3. ]);
  Alcotest.(check (list (float 0.)))
    "t=0 sorts" [ 1.; 2.; 3. ]
    (Trim.trimmed ~t:0 [ 3.; 1.; 2. ])

let test_trimmed_midpoint () =
  check "midpoint" true (Trim.trimmed_midpoint ~t:1 [ 0.; 10.; 4.; 100. ] = Some 7.);
  check "empty" true (Trim.trimmed_midpoint ~t:3 [ 1.; 2. ] = None)

let prop_trimmed_within_honest_range =
  (* With at most t outliers injected, the trimmed multiset stays within the
     range of the original values. *)
  QCheck2.Test.make ~name:"trim discards t outliers" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_range 4 20) (float_bound_inclusive 10.)) (int_range 1 3))
    (fun (honest, t) ->
      QCheck2.assume (List.length honest > 2 * t);
      let lo = List.fold_left min infinity honest in
      let hi = List.fold_left max neg_infinity honest in
      let byz = List.init t (fun i -> if i mod 2 = 0 then 1e9 else -1e9) in
      match Trim.range (Trim.trimmed ~t (honest @ byz)) with
      | None -> false
      | Some (a, b) -> a >= lo -. 1e-9 && b <= hi +. 1e-9)

(* --- rounds formulas --- *)

let test_bdh_iterations () =
  check_int "delta<=1" 0 (Rounds.bdh_iterations ~range:1. ~eps:1.);
  check_int "delta=2" 2 (Rounds.bdh_iterations ~range:2. ~eps:1.);
  (* 2^2 = 4 >= 2 but 1^1 = 1 < 2 *)
  check_int "delta=4" 2 (Rounds.bdh_iterations ~range:4. ~eps:1.);
  check_int "delta=5" 3 (Rounds.bdh_iterations ~range:5. ~eps:1.);
  (* 3^3 = 27 >= 5 > 2^2 *)
  check_int "delta=1e6" 8 (Rounds.bdh_iterations ~range:1e6 ~eps:1.)
(* 8^8 = 16.7e6 >= 1e6 > 7^7 = 823543 *)

let test_bdh_rounds_triple () =
  check_int "3x" (3 * Rounds.bdh_iterations ~range:100. ~eps:1.)
    (Rounds.bdh_rounds ~range:100. ~eps:1.)

let test_schedule_below_paper_bound () =
  (* Theorem 3's ceiling dominates our exact schedule for all delta >= 2. *)
  List.iter
    (fun delta ->
      check
        (Printf.sprintf "delta=%g" delta)
        true
        (Rounds.bdh_rounds ~range:delta ~eps:1.
        <= Rounds.paper_round_bound ~range:delta ~eps:1.))
    [ 2.; 3.; 10.; 100.; 1e4; 1e6; 1e9; 1e12 ]

let test_halving_iterations () =
  check_int "1024" 10 (Rounds.halving_iterations ~range:1024. ~eps:1.);
  check_int "1000" 10 (Rounds.halving_iterations ~range:1000. ~eps:1.);
  check_int "small" 0 (Rounds.halving_iterations ~range:0.5 ~eps:1.)

let test_rounds_invalid () =
  check "bad eps" true
    (try ignore (Rounds.bdh_iterations ~range:1. ~eps:0.); false
     with Invalid_argument _ -> true)

(* --- running the protocols --- *)

let float_inputs values self = values.(self)

let run_bdh ?(seed = 0) ~n ~t ~iterations ~adversary values =
  let report =
    Sync_engine.run ~n ~t ~seed ~max_rounds:(max 1 (3 * iterations))
      ~protocol:(Bdh.protocol ~inputs:(float_inputs values) ~t ~iterations ())
      ~adversary ()
  in
  report

let honest_inputs_of values corrupted =
  Array.to_list (Array.mapi (fun i v -> (i, v)) values)
  |> List.filter_map (fun (i, v) -> if List.mem i corrupted then None else Some v)

(* hull inputs: initially-honest; termination count: finally honest *)
let verdict_of ~eps values (report : (Bdh.result, 'm) Sync_engine.report) =
  let hull_inputs =
    honest_inputs_of values (Sync_engine.initially_corrupted report)
  in
  Verdict.real ~eps
    ~n_honest:(Array.length values - List.length report.corrupted)
    ~honest_inputs:hull_inputs
    ~honest_outputs:
      (List.map (fun (r : Bdh.result) -> r.value) (Sync_engine.honest_outputs report))

let test_bdh_fault_free () =
  let values = [| 0.; 10.; 20.; 30.; 40.; 50.; 60. |] in
  let iterations = Rounds.bdh_iterations ~range:60. ~eps:1. in
  let report =
    run_bdh ~n:7 ~t:2 ~iterations ~adversary:(Adversary.passive "none") values
  in
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report));
  check_int "exact schedule" (3 * iterations) report.rounds_used;
  (* fault-free: one iteration makes all multisets identical -> exact
     agreement from iteration 1 on *)
  check "exact agreement fault-free" true
    (Verdict.spread
       (List.map (fun (r : Bdh.result) -> r.value) (Sync_engine.honest_outputs report))
    = 0.)

let test_bdh_silent_byz () =
  let values = [| 0.; 10.; 20.; 30.; 40.; 50.; 60. |] in
  let iterations = Rounds.bdh_iterations ~range:60. ~eps:1. in
  let report =
    run_bdh ~n:7 ~t:2 ~iterations
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      values
  in
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report))

let test_bdh_crash_mid_protocol () =
  let values = [| 0.; 10.; 20.; 30.; 40.; 50.; 60. |] in
  let iterations = Rounds.bdh_iterations ~range:60. ~eps:1. in
  let report =
    run_bdh ~n:7 ~t:2 ~iterations
      ~adversary:(Strategies.crash ~at_round:4 ~victims:[ 0; 3 ])
      values
  in
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report))

let test_bdh_spoiler_within_lemma5 () =
  List.iter
    (fun (n, t, d) ->
      let values = Array.init n (fun i -> d *. float_of_int i /. float_of_int (n - 1)) in
      let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
      let report =
        run_bdh ~n ~t ~iterations
          ~adversary:(Spoiler.realaa_spoiler ~t ~iterations)
          values
      in
      let v = verdict_of ~eps:1. values report in
      check (Printf.sprintf "verdict n=%d t=%d d=%g" n t d) true (Verdict.all_ok v);
      (* Lemma 5 with the adversary's actual split: spread <= D * prod(t_i) /
         ((n-2t)^R). We only assert the protocol-level guarantee spread <=
         D / R^R <= eps. *)
      let spread =
        Verdict.spread
          (List.map (fun (r : Bdh.result) -> r.value) (Sync_engine.honest_outputs report))
      in
      check "spread within eps" true (spread <= 1.))
    [ (7, 2, 60.); (10, 3, 100.); (13, 4, 500.); (7, 2, 1000.) ]

let test_bdh_spoiler_slower_than_fault_free () =
  (* The spoiler must actually slow convergence: after ONE iteration, the
     fault-free spread is 0 while the spoiled spread is positive. *)
  let n = 10 and t = 3 in
  let values = Array.init n (fun i -> float_of_int (10 * i)) in
  let spoiled =
    run_bdh ~n ~t ~iterations:1 ~adversary:(Spoiler.realaa_spoiler ~t ~iterations:3) values
  in
  let spread =
    Verdict.spread
      (List.map (fun (r : Bdh.result) -> r.value) (Sync_engine.honest_outputs spoiled))
  in
  check "spoiler causes disagreement after 1 iteration" true (spread > 0.)

let test_bdh_blacklist_reported () =
  let n = 7 and t = 2 in
  let values = Array.init n (fun i -> float_of_int i) in
  let report =
    run_bdh ~n ~t ~iterations:3 ~adversary:(Spoiler.realaa_spoiler ~t ~iterations:3) values
  in
  (* At least one honest party must have blacklisted at least one spoiler
     (every spent leader is globally convicted). *)
  let blacklists =
    List.map (fun (r : Bdh.result) -> r.blacklisted) (Sync_engine.honest_outputs report)
  in
  check "someone blacklisted" true (List.exists (fun l -> l <> []) blacklists)

let test_bdh_trajectory_monotone_spread () =
  (* Honest spreads never grow from one iteration to the next. *)
  let n = 10 and t = 3 in
  let values = Array.init n (fun i -> float_of_int (7 * i)) in
  let report =
    run_bdh ~n ~t ~iterations:4 ~adversary:(Spoiler.realaa_spoiler ~t ~iterations:4) values
  in
  let outputs = Sync_engine.honest_outputs report in
  let iters = List.length (List.hd outputs).Bdh.trajectory in
  let spreads =
    List.init iters (fun k ->
        Verdict.spread (List.map (fun (r : Bdh.result) -> List.nth r.trajectory k) outputs))
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a +. 1e-9 >= b && monotone rest
    | _ -> true
  in
  check "spread non-increasing" true (monotone spreads)

(* --- iterated midpoint baselines --- *)

let run_naive ?(seed = 0) ~n ~t ~iterations ~adversary values =
  Sync_engine.run ~n ~t ~seed ~max_rounds:(max 1 iterations)
    ~protocol:(Iterated_midpoint.naive ~inputs:(float_inputs values) ~t ~iterations)
    ~adversary ()

let test_naive_fault_free_halving () =
  let n = 7 and t = 2 in
  let values = Array.init n (fun i -> float_of_int (16 * i)) in
  let d = 16. *. float_of_int (n - 1) in
  let iterations = Rounds.halving_iterations ~range:d ~eps:1. in
  let report = run_naive ~n ~t ~iterations ~adversary:(Adversary.passive "none") values in
  let outputs =
    List.map
      (fun (r : Iterated_midpoint.result) -> r.value)
      (Sync_engine.honest_outputs report)
  in
  let hull_inputs = honest_inputs_of values (Sync_engine.initially_corrupted report) in
  check "verdict" true
    (Verdict.all_ok
       (Verdict.real ~eps:1.
          ~n_honest:(Array.length values - List.length report.corrupted)
          ~honest_inputs:hull_inputs ~honest_outputs:outputs));
  check_int "one round per iteration" iterations report.rounds_used

let test_naive_halving_under_wedge_above_threshold () =
  (* n = 3t + 1: the wedge is powerless; spread still halves per round. *)
  let n = 7 and t = 2 in
  let values = Array.init n (fun i -> if i < 4 then 0. else 64.) in
  let iterations = 10 in
  let report = run_naive ~n ~t ~iterations ~adversary:(Wedge.naive_wedge ()) values in
  let outputs =
    List.map
      (fun (r : Iterated_midpoint.result) -> r.value)
      (Sync_engine.honest_outputs report)
  in
  check "wedge fails at n=3t+1" true (Verdict.spread outputs <= 64. /. 512.)

let test_naive_wedge_breaks_at_boundary () =
  (* n = 3t: agreement never happens — the classic impossibility. *)
  let n = 6 and t = 2 in
  let values = [| 0.; 0.; 64.; 64.; 0.; 64. |] in
  let report = run_naive ~n ~t ~iterations:20 ~adversary:(Wedge.naive_wedge ()) values in
  let outputs =
    List.map
      (fun (r : Iterated_midpoint.result) -> r.value)
      (Sync_engine.honest_outputs report)
  in
  check "still split after 20 iterations" true (Verdict.spread outputs >= 32.)

let test_gradecast_midpoint_converges () =
  let n = 7 and t = 2 in
  let values = Array.init n (fun i -> float_of_int (16 * i)) in
  let d = 16. *. float_of_int (n - 1) in
  let iterations = Rounds.halving_iterations ~range:d ~eps:1. in
  let report =
    Sync_engine.run ~n ~t ~max_rounds:(3 * iterations)
      ~protocol:
        (Iterated_midpoint.with_gradecast ~inputs:(float_inputs values) ~t ~iterations)
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in
  let outputs =
    List.map
      (fun (r : Iterated_midpoint.result) -> r.value)
      (Sync_engine.honest_outputs report)
  in
  let hull_inputs = honest_inputs_of values (Sync_engine.initially_corrupted report) in
  check "verdict" true
    (Verdict.all_ok
       (Verdict.real ~eps:1.
          ~n_honest:(Array.length values - List.length report.corrupted)
          ~honest_inputs:hull_inputs ~honest_outputs:outputs));
  check_int "three rounds per iteration" (3 * iterations) report.rounds_used

let test_bdh_wedge_breaks_at_boundary () =
  (* n = 3t: the gradecast wedge drives different grade-2 values into the
     two camps; RealAA cannot converge. *)
  let n = 6 and t = 2 in
  let values = [| 0.; 0.; 64.; 64.; 0.; 64. |] in
  let report =
    Sync_engine.run ~n ~t ~max_rounds:60
      ~protocol:(Bdh.protocol ~inputs:(float_inputs values) ~t ~iterations:10 ())
      ~adversary:(Wedge.gradecast_wedge ())
      ()
  in
  let outputs =
    List.map (fun (r : Bdh.result) -> r.value) (Sync_engine.honest_outputs report)
  in
  check "agreement broken at n=3t" true (Verdict.spread outputs > 1.)

let test_bdh_wedge_harmless_above_boundary () =
  let n = 7 and t = 2 in
  let values = [| 0.; 0.; 64.; 64.; 0.; 64.; 32. |] in
  let iterations = Rounds.bdh_iterations ~range:64. ~eps:1. in
  let report =
    Sync_engine.run ~n ~t ~max_rounds:(3 * iterations)
      ~protocol:(Bdh.protocol ~inputs:(float_inputs values) ~t ~iterations ())
      ~adversary:(Wedge.gradecast_wedge ())
      ()
  in
  check "verdict ok at n=3t+1" true (Verdict.all_ok (verdict_of ~eps:1. values report))

(* --- property: BDH against randomized adversaries --- *)

let prop_bdh_random_adversaries =
  QCheck2.Test.make ~name:"BDH AA under assorted adversaries" ~count:40
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 0 2) (int_range 0 3))
    (fun (seed, size_class, adv_class) ->
      let n, t = List.nth [ (4, 1); (7, 2); (10, 3) ] size_class in
      let rng = Rng.create seed in
      let values = Array.init n (fun _ -> float_of_int (Rng.int rng 1000)) in
      let d = 1000. in
      let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
      let adversary =
        match adv_class with
        | 0 -> Adversary.passive "none"
        | 1 -> Strategies.random_silent ~count:t
        | 2 -> Strategies.crash ~at_round:(1 + Rng.int rng (3 * iterations)) ~victims:(List.init t (fun i -> i))
        | _ -> Spoiler.realaa_spoiler ~t ~iterations
      in
      let report = run_bdh ~seed ~n ~t ~iterations ~adversary values in
      Verdict.all_ok (verdict_of ~eps:1. values report))

let () =
  Alcotest.run "realaa"
    [
      ( "closest-int",
        [
          Alcotest.test_case "values" `Quick test_closest_int_values;
          Alcotest.test_case "nan" `Quick test_closest_int_nan;
          QCheck_alcotest.to_alcotest prop_remark1;
          QCheck_alcotest.to_alcotest prop_remark2;
        ] );
      ( "trim",
        [
          Alcotest.test_case "trimmed" `Quick test_trimmed;
          Alcotest.test_case "trimmed midpoint" `Quick test_trimmed_midpoint;
          QCheck_alcotest.to_alcotest prop_trimmed_within_honest_range;
        ] );
      ( "rounds",
        [
          Alcotest.test_case "bdh iterations" `Quick test_bdh_iterations;
          Alcotest.test_case "bdh rounds = 3R" `Quick test_bdh_rounds_triple;
          Alcotest.test_case "schedule <= paper bound" `Quick
            test_schedule_below_paper_bound;
          Alcotest.test_case "halving iterations" `Quick test_halving_iterations;
          Alcotest.test_case "invalid args" `Quick test_rounds_invalid;
        ] );
      ( "bdh",
        [
          Alcotest.test_case "fault free" `Quick test_bdh_fault_free;
          Alcotest.test_case "silent byz" `Quick test_bdh_silent_byz;
          Alcotest.test_case "crash mid-protocol" `Quick
            test_bdh_crash_mid_protocol;
          Alcotest.test_case "spoiler: AA still holds" `Quick
            test_bdh_spoiler_within_lemma5;
          Alcotest.test_case "spoiler slows convergence" `Quick
            test_bdh_spoiler_slower_than_fault_free;
          Alcotest.test_case "blacklist reported" `Quick
            test_bdh_blacklist_reported;
          Alcotest.test_case "spread monotone" `Quick
            test_bdh_trajectory_monotone_spread;
          QCheck_alcotest.to_alcotest prop_bdh_random_adversaries;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "naive halving fault-free" `Quick
            test_naive_fault_free_halving;
          Alcotest.test_case "naive resists wedge at n=3t+1" `Quick
            test_naive_halving_under_wedge_above_threshold;
          Alcotest.test_case "naive broken at n=3t" `Quick
            test_naive_wedge_breaks_at_boundary;
          Alcotest.test_case "gradecast midpoint converges" `Quick
            test_gradecast_midpoint_converges;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "BDH broken at n=3t" `Quick
            test_bdh_wedge_breaks_at_boundary;
          Alcotest.test_case "BDH fine at n=3t+1" `Quick
            test_bdh_wedge_harmless_above_boundary;
        ] );
    ]
