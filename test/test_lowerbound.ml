(* Tests for the Fekete lower-bound machinery (Section 3): K(R,D), optimal
   budget partitions, the round lower bound, and the executable one-round
   view chain. *)

open Aat_lowerbound
open Aat_realaa

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- partitions --- *)

let test_optimal_partition_shapes () =
  Alcotest.(check (list int)) "t=6 r=3" [ 2; 2; 2 ] (Fekete.optimal_partition ~t:6 ~r:3);
  Alcotest.(check (list int)) "t=7 r=3" [ 3; 2; 2 ] (Fekete.optimal_partition ~t:7 ~r:3);
  Alcotest.(check (list int)) "t=2 r=5" [ 1; 1 ] (Fekete.optimal_partition ~t:2 ~r:5);
  Alcotest.(check (list int)) "t=0" [] (Fekete.optimal_partition ~t:0 ~r:3)

let test_partition_sums () =
  for t = 0 to 20 do
    for r = 1 to 8 do
      let parts = Fekete.optimal_partition ~t ~r in
      check "sum <= t" true (List.fold_left ( + ) 0 parts <= t);
      check "positive parts" true (List.for_all (fun p -> p >= 1) parts)
    done
  done

let prop_balanced_beats_any_partition =
  (* the balanced partition's product dominates random partitions *)
  QCheck2.Test.make ~name:"balanced partition is optimal" ~count:300
    QCheck2.Gen.(
      pair (int_range 1 30)
        (list_size (int_range 1 8) (int_range 1 10)))
    (fun (t, candidate) ->
      let r = List.length candidate in
      QCheck2.assume (List.fold_left ( + ) 0 candidate <= t);
      Fekete.log2_product (Fekete.optimal_partition ~t ~r)
      >= Fekete.log2_product candidate -. 1e-9)

(* --- K(R,D) --- *)

let test_k_one_round () =
  (* K(1, D) = D * t / (n + t) *)
  check_float "n=4 t=1" (10. *. 1. /. 5.) (Fekete.k_bound ~n:4 ~t:1 ~r:1 ~d:10.);
  check_float "n=10 t=3" (100. *. 3. /. 13.) (Fekete.k_bound ~n:10 ~t:3 ~r:1 ~d:100.)

let test_k_decreasing_in_r () =
  let d = 1e6 in
  let rec go r prev =
    if r > 12 then ()
    else begin
      let k = Fekete.log2_k ~n:10 ~t:3 ~r ~d in
      check "K decreasing" true (k < prev);
      go (r + 1) k
    end
  in
  go 2 (Fekete.log2_k ~n:10 ~t:3 ~r:1 ~d)

let test_k_zero_t () =
  check "t=0 no bound" true (Fekete.log2_k ~n:5 ~t:0 ~r:2 ~d:100. = neg_infinity)

let test_min_rounds_monotone_in_d () =
  let r1 = Fekete.min_rounds ~n:10 ~t:3 ~d:1e2 ~eps:1. in
  let r2 = Fekete.min_rounds ~n:10 ~t:3 ~d:1e6 ~eps:1. in
  let r3 = Fekete.min_rounds ~n:10 ~t:3 ~d:1e12 ~eps:1. in
  check "monotone" true (r1 <= r2 && r2 <= r3);
  check "positive" true (r1 >= 1)

let test_min_rounds_edge_cases () =
  check_int "t=0" 0 (Fekete.min_rounds ~n:5 ~t:0 ~d:100. ~eps:1.);
  check_int "d<=eps" 0 (Fekete.min_rounds ~n:5 ~t:1 ~d:0.5 ~eps:1.)

let test_min_rounds_definition () =
  (* minimality: K(R) <= eps < K(R-1) *)
  List.iter
    (fun (n, t, d) ->
      let r = Fekete.min_rounds ~n ~t ~d ~eps:1. in
      check "K(r) <= 1" true (Fekete.log2_k ~n ~t ~r ~d <= 0.);
      if r > 1 then
        check "K(r-1) > 1" true (Fekete.log2_k ~n ~t ~r:(r - 1) ~d > 0.))
    [ (4, 1, 1e3); (10, 3, 1e6); (100, 33, 1e9); (7, 2, 50.) ]

(* The protocol's upper bound always sits at or above the lower bound — the
   two sides of the paper's optimality claim never cross. *)
let test_upper_bound_dominates_lower () =
  List.iter
    (fun (n, t, d) ->
      let lower = Fekete.min_rounds ~n ~t ~d ~eps:1. in
      let upper = Rounds.bdh_rounds ~range:d ~eps:1. in
      check (Printf.sprintf "n=%d t=%d d=%g" n t d) true (upper >= lower))
    [ (4, 1, 1e2); (7, 2, 1e4); (10, 3, 1e6); (31, 10, 1e9); (100, 33, 1e12) ]

let test_theorem2_closed_form () =
  (* for t = Theta(n) and polynomial D, the closed form is within a constant
     of the exact minimal R *)
  List.iter
    (fun d ->
      let exact = float_of_int (Fekete.min_rounds ~n:12 ~t:3 ~d ~eps:1.) in
      let closed = Fekete.theorem2_closed_form ~n:12 ~t:3 ~d in
      check "within 4x" true (exact >= closed /. 4. && exact <= (4. *. closed) +. 4.))
    [ 1e2; 1e4; 1e6; 1e9; 1e12 ];
  check_float "degenerate" 0. (Fekete.theorem2_closed_form ~n:12 ~t:0 ~d:100.)

let test_chain_length_formula () =
  (* r=1: s = (n+t)/t *)
  check_float "r=1" (Float.log2 (13. /. 3.)) (Fekete.chain_length ~n:10 ~t:3 ~r:1)

(* --- the executable chain --- *)

let test_chain_endpoints () =
  let chain = Chain.one_round_chain ~n:7 ~t:2 ~a:0. ~b:10. in
  let first = List.hd chain and last = List.nth chain (List.length chain - 1) in
  check "starts all-a" true (Array.for_all (fun x -> x = 0.) first);
  check "ends all-b" true (Array.for_all (fun x -> x = 10.) last);
  check_int "length = ceil(n/t)+1" 5 (List.length chain)

let test_chain_steps_realizable () =
  List.iter
    (fun (n, t) ->
      let chain = Chain.one_round_chain ~n ~t ~a:0. ~b:1. in
      check "adjacent realizable" true (Chain.adjacent_executions_valid ~n ~t chain))
    [ (4, 1); (7, 2); (10, 3); (5, 4) ]

let test_gap_of_trimmed_midpoint () =
  (* the classic one-round rule must exhibit a gap >= D / ceil(n/t) *)
  let n = 7 and t = 2 and d = 100. in
  let f view = Option.get (Trim.trimmed_midpoint ~t (Array.to_list view)) in
  let gap = Chain.max_adjacent_gap ~f ~n ~t ~a:0. ~b:d in
  let s = float_of_int ((n + t - 1) / t) in
  check "gap >= D/s" true (gap >= (d /. s) -. 1e-9);
  (* and of course it cannot achieve 1-agreement in one round *)
  check "gap > 1" true (gap > 1.)

let prop_no_one_round_rule_beats_chain =
  (* ANY output rule that respects validity at the chain's endpoints has a
     large adjacent gap: qcheck over a family of "weighted trimmed average"
     rules. *)
  QCheck2.Test.make ~name:"one-round rules can't dodge the chain" ~count:200
    QCheck2.Gen.(pair (float_bound_inclusive 1.) (int_range 0 2))
    (fun (alpha, size_class) ->
      let n, t = List.nth [ (4, 1); (7, 2); (10, 3) ] size_class in
      let d = 1000. in
      let f view =
        let vs = Trim.trimmed ~t (Array.to_list view) in
        match Trim.range vs with
        | None -> 0.
        | Some (lo, hi) -> lo +. (alpha *. (hi -. lo))
      in
      let gap = Chain.max_adjacent_gap ~f ~n ~t ~a:0. ~b:d in
      let s = float_of_int ((n + t - 1) / t) in
      gap >= (d /. s) -. 1e-6)

let test_tree_chain () =
  (* Corollary 1 on a long path: the tree-valued trimmed-median rule has an
     adjacent gap of at least D(T)/s *)
  let tree = Aat_tree.Generate.path 101 in
  let n = 7 and t = 2 in
  let f (view : int array) =
    let sorted = Array.copy view in
    Array.sort compare sorted;
    sorted.(Array.length sorted / 2)
  in
  let gap = Chain.tree_max_adjacent_gap ~f ~tree ~n ~t in
  let s = (n + t - 1) / t in
  check "tree gap" true (gap >= 100 / s);
  check "no 1-agreement" true (gap > 1)

let () =
  Alcotest.run "lowerbound"
    [
      ( "partitions",
        [
          Alcotest.test_case "shapes" `Quick test_optimal_partition_shapes;
          Alcotest.test_case "sums" `Quick test_partition_sums;
          QCheck_alcotest.to_alcotest prop_balanced_beats_any_partition;
        ] );
      ( "k-bound",
        [
          Alcotest.test_case "one round closed form" `Quick test_k_one_round;
          Alcotest.test_case "decreasing in R" `Quick test_k_decreasing_in_r;
          Alcotest.test_case "t=0" `Quick test_k_zero_t;
          Alcotest.test_case "min_rounds monotone" `Quick
            test_min_rounds_monotone_in_d;
          Alcotest.test_case "min_rounds edges" `Quick
            test_min_rounds_edge_cases;
          Alcotest.test_case "min_rounds minimality" `Quick
            test_min_rounds_definition;
          Alcotest.test_case "upper >= lower" `Quick
            test_upper_bound_dominates_lower;
          Alcotest.test_case "Theorem 2 closed form" `Quick
            test_theorem2_closed_form;
          Alcotest.test_case "chain length" `Quick test_chain_length_formula;
        ] );
      ( "chain",
        [
          Alcotest.test_case "endpoints" `Quick test_chain_endpoints;
          Alcotest.test_case "steps realizable" `Quick
            test_chain_steps_realizable;
          Alcotest.test_case "trimmed midpoint gap" `Quick
            test_gap_of_trimmed_midpoint;
          Alcotest.test_case "tree chain (Corollary 1)" `Quick test_tree_chain;
          QCheck_alcotest.to_alcotest prop_no_one_round_rule_beats_chain;
        ] );
    ]
