(* Tests for the campaign subsystem: the Pool's determinism contract
   (results and exceptions independent of worker count), the per-task seed
   schedule, the Runner facade, and the campaign driver's worker-count
   invariance — the property the whole design exists to guarantee: one
   spec, any --workers, bit-identical results and JSONL. *)

open Treeagree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_order () =
  List.iter
    (fun workers ->
      let got = Pool.map ~workers 17 (fun i -> i * i) in
      Alcotest.(check (array int))
        (Printf.sprintf "square map, %d workers" workers)
        (Array.init 17 (fun i -> i * i))
        got)
    [ 1; 2; 3; 16 ]

let test_pool_edge_cases () =
  check_int "n = 0" 0 (Array.length (Pool.map ~workers:4 0 (fun i -> i)));
  Alcotest.(check (array int)) "workers > n" [| 0; 1; 2 |]
    (Pool.map ~workers:64 3 (fun i -> i));
  Alcotest.(check (array int)) "workers clamped to >= 1" [| 7 |]
    (Pool.map ~workers:(-3) 1 (fun _ -> 7));
  check "default_workers positive" true (Pool.default_workers () >= 1)

let test_pool_exception () =
  (* Tasks 3 and 7 fail; whatever the worker count and completion order,
     the lowest-indexed failure must be the one re-raised. *)
  List.iter
    (fun workers ->
      match
        Pool.map ~workers 10 (fun i ->
            if i = 3 || i = 7 then failwith (string_of_int i) else i)
      with
      | _ -> Alcotest.fail "expected a Failure"
      | exception Failure msg ->
          check_string
            (Printf.sprintf "lowest-index failure, %d workers" workers)
            "3" msg)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* seed schedule *)

let test_task_seeds () =
  let a = Campaign.task_seeds ~base_seed:42 ~count:64 in
  let b = Campaign.task_seeds ~base_seed:42 ~count:64 in
  Alcotest.(check (array int)) "pure function of (base_seed, count)" a b;
  let c = Campaign.task_seeds ~base_seed:43 ~count:64 in
  check "different base seed, different schedule" true (a <> c);
  let module S = Set.Make (Int) in
  check_int "64 distinct seeds" 64 (S.cardinal (S.of_list (Array.to_list a)));
  check "seeds non-negative" true (Array.for_all (fun s -> s >= 0) a);
  (* a longer schedule extends the shorter one: seeds are positional *)
  let long = Campaign.task_seeds ~base_seed:42 ~count:128 in
  Alcotest.(check (array int)) "prefix stability" a (Array.sub long 0 64)

let test_split_seed () =
  let seeds = Campaign.task_seeds ~base_seed:9 ~count:8 in
  for i = 0 to 7 do
    check_int
      (Printf.sprintf "split_seed agrees with task_seeds at %d" i)
      seeds.(i)
      (Campaign.split_seed ~base:9 ~index:i)
  done

(* ------------------------------------------------------------------ *)
(* Runner *)

let test_runner_tree_aa () =
  let tree = Generate.caterpillar ~spine:6 ~legs:1 in
  let inputs = [| 0; 3; 5; 2; 8; 1; 4 |] in
  let runner =
    Runner.tree_aa ~tree ~inputs ~t:2
      ~adversary:(fun () -> Strategies.random_silent ~count:2)
      ()
  in
  check_string "name" "tree-aa" runner.Runner.name;
  let o = runner.Runner.run ~seed:3 () in
  check "verdict ok" true (Runner.ok o);
  check_string "engine" "sync" o.Runner.engine;
  check_int "corrupted" 2 o.Runner.corrupted;
  check "tree outcomes carry no spread" true (o.Runner.spread = None);
  (* same seed, same outcome — the adversary thunk rebuilds fresh state *)
  check "runs are reproducible" true (runner.Runner.run ~seed:3 () = o);
  check "seed is live" true (runner.Runner.run ~seed:4 () <> o)

let test_runner_real_aa () =
  let inputs = [| 0.; 25.; 50.; 75.; 100. |] in
  let runner =
    Runner.real_aa ~eps:1. ~inputs ~t:1 ~iterations:7
      ~adversary:(fun () -> Adversary.passive "none")
      ()
  in
  let o = runner.Runner.run ~seed:1 () in
  check "verdict ok" true (Runner.ok o);
  check "real outcomes carry a spread" true (o.Runner.spread <> None);
  check "fault-free spread within eps" true
    (match o.Runner.spread with Some s -> s <= 1. | None -> false)

(* ------------------------------------------------------------------ *)
(* campaign driver: worker-count invariance *)

let spec_of_seed ?(chaos = false) seed =
  let open Campaign.Spec in
  let rng = Rng.create seed in
  let protocol, inputs, adversary =
    match Rng.int rng 4 with
    | 0 -> (Tree_aa, Random_vertices, Any_tree_adversary)
    | 1 -> (Nr_baseline, Random_vertices, Random_silent)
    | 2 ->
        ( Real_aa { eps = 1. },
          Log_uniform_reals { log10_min = 1.; log10_max = 3. },
          Any_real_adversary )
    | _ -> (Round_sim_tree_aa, Random_vertices, Passive)
  in
  (* with [chaos], also sweep the fault modes: per-task random plans, one
     fixed sync-compatible plan, or none — the invariance property must
     hold across all of them *)
  let faults, watchdogs =
    if not chaos then (No_faults, false)
    else
      match Rng.int rng 3 with
      | 0 -> (Chaos { intensity = 0.3 +. Rng.float rng 0.7 }, true)
      | 1 ->
          ( Fault_plan
              [
                Fault_plan.Omission { prob = 0.05; scope = Fault_plan.All };
                Fault_plan.Crash { party = 0; at_round = 2 };
              ],
            Rng.bool rng )
      | _ -> (No_faults, true)
  in
  {
    name = "prop";
    protocol;
    tree = Random_tree (Between (2, 16));
    n = Between (4, 8);
    t_budget = Up_to_third;
    inputs;
    adversary;
    faults;
    watchdogs;
    repetitions = 2 + Rng.int rng 3;
    base_seed = seed;
  }

let prop_workers_invariant =
  QCheck2.Test.make
    ~name:"campaign: workers 1/2/4 give identical results and JSONL" ~count:10
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let spec = spec_of_seed seed in
      let r1 = Campaign.run ~workers:1 spec in
      let r2 = Campaign.run ~workers:2 spec in
      let r4 = Campaign.run ~workers:4 spec in
      r1.Campaign.results = r2.Campaign.results
      && r2.Campaign.results = r4.Campaign.results
      && r1.Campaign.aggregate = r4.Campaign.aggregate
      && Campaign.jsonl_string r1 = Campaign.jsonl_string r2
      && Campaign.jsonl_string r2 = Campaign.jsonl_string r4)

(* Same property with fault injection in play: fault plans compile to
   per-run RNG streams split from the engine seed, so chaos campaigns must
   stay bit-identical for any worker count too. *)
let prop_workers_invariant_chaos =
  QCheck2.Test.make
    ~name:"campaign: worker invariance holds under fault plans and chaos"
    ~count:10
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let spec = spec_of_seed ~chaos:true seed in
      let r1 = Campaign.run ~workers:1 spec in
      let r2 = Campaign.run ~workers:2 spec in
      let r4 = Campaign.run ~workers:4 spec in
      r1.Campaign.results = r2.Campaign.results
      && r2.Campaign.results = r4.Campaign.results
      && r1.Campaign.aggregate = r4.Campaign.aggregate
      && Campaign.jsonl_string r1 = Campaign.jsonl_string r4)

let prop_task_seeds_in_results =
  QCheck2.Test.make
    ~name:"campaign: per-task seeds equal the published schedule" ~count:20
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let spec = spec_of_seed seed in
      let r = Campaign.run ~workers:2 spec in
      let schedule =
        Campaign.task_seeds ~base_seed:spec.Campaign.Spec.base_seed
          ~count:spec.Campaign.Spec.repetitions
      in
      Array.length r.Campaign.results = spec.Campaign.Spec.repetitions
      && Array.for_all
           (fun (tr : Campaign.task_result) ->
             tr.Campaign.task_seed = schedule.(tr.Campaign.task))
           r.Campaign.results)

(* ------------------------------------------------------------------ *)
(* JSONL stream *)

let golden_spec =
  {
    Campaign.Spec.name = "golden";
    protocol = Campaign.Spec.Real_aa { eps = 1. };
    tree = Campaign.Spec.Any_tree;
    n = Campaign.Spec.Exactly 5;
    t_budget = Campaign.Spec.Fixed_t 1;
    inputs = Campaign.Spec.Linspace_reals 100.;
    adversary = Campaign.Spec.Passive;
    faults = Campaign.Spec.No_faults;
    watchdogs = false;
    repetitions = 2;
    base_seed = 9;
  }

(* Locked-down stream for a tiny fixed campaign. If a protocol or engine
   change legitimately shifts message counts, regenerate with
     treeaa campaign -p realaa -i linspace:100 -a none -n 5 -t 1 \
       --reps 2 --seed 9 --name golden *)
let golden_jsonl =
  {|{"type":"campaign-start","format_version":"1.0","name":"golden","protocol":"realaa","repetitions":2,"base_seed":9}
{"type":"task","task":0,"task_seed":6146177117965836,"outcome":{"runner":"realaa","seed":590121192,"engine":"sync","ok":true,"termination":true,"validity":true,"agreement":true,"rounds_used":12,"honest_messages":300,"adversary_messages":0,"corrupted":0,"initially_corrupted":0,"spread":0}}
{"type":"task","task":1,"task_seed":6761658480391677,"outcome":{"runner":"realaa","seed":255723267,"engine":"sync","ok":true,"termination":true,"validity":true,"agreement":true,"rounds_used":12,"honest_messages":300,"adversary_messages":0,"corrupted":0,"initially_corrupted":0,"spread":0}}
{"type":"campaign-stop","tasks":2,"violations":0,"errors":0,"total_rounds":24,"total_honest_messages":600,"total_adversary_messages":0,"max_spread":0}
|}

let test_golden_jsonl () =
  let r = Campaign.run ~workers:1 golden_spec in
  check_string "golden stream" golden_jsonl (Campaign.jsonl_string r);
  (* and the stream is identical however it was scheduled *)
  check_string "golden stream, 3 workers" golden_jsonl
    (Campaign.jsonl_string (Campaign.run ~workers:3 golden_spec))

let test_jsonl_roundtrip () =
  let r = Campaign.run ~workers:2 (spec_of_seed 77) in
  let lines =
    String.split_on_char '\n' (Campaign.jsonl_string r)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l -> Result.get_ok (Telemetry.Json.of_string l))
  in
  check_int "line count" (Array.length r.Campaign.results + 2)
    (List.length lines);
  let field name json = Option.get (Telemetry.Json.member name json) in
  let ty json = Option.get (Telemetry.Json.to_str (field "type" json)) in
  check_string "header" "campaign-start" (ty (List.hd lines));
  check_string "footer" "campaign-stop" (ty (List.nth lines (List.length lines - 1)));
  List.iteri
    (fun i json ->
      if i > 0 && i < List.length lines - 1 then begin
        check_string "task line" "task" (ty json);
        check_int "tasks stream in order" (i - 1)
          (Option.get (Telemetry.Json.to_int (field "task" json)))
      end)
    lines;
  (* determinism hook the docs promise: no worker count in the header *)
  check "header carries no worker count" true
    (Telemetry.Json.member "workers" (List.hd lines) = None)

let test_validate () =
  let ok = function Ok () -> true | Error _ -> false in
  let base = golden_spec in
  check "golden spec validates" true (ok (Campaign.Spec.validate base));
  check "realaa rejects vertex inputs" false
    (ok
       (Campaign.Spec.validate
          { base with inputs = Campaign.Spec.Random_vertices }));
  check "tree-aa rejects real adversaries" false
    (ok
       (Campaign.Spec.validate
          {
            base with
            protocol = Campaign.Spec.Tree_aa;
            inputs = Campaign.Spec.Random_vertices;
            adversary = Campaign.Spec.Gradecast_wedge;
          }));
  check "async runs only passive" false
    (ok
       (Campaign.Spec.validate
          {
            base with
            protocol = Campaign.Spec.Async_tree_aa;
            inputs = Campaign.Spec.Random_vertices;
            adversary = Campaign.Spec.Random_silent;
          }));
  check "path-aa needs a path family" false
    (ok
       (Campaign.Spec.validate
          {
            base with
            protocol = Campaign.Spec.Path_aa;
            inputs = Campaign.Spec.Random_vertices;
          }))

(* ------------------------------------------------------------------ *)
(* failure containment: one bad cell must not take down the grid *)

(* Chaos at full intensity over the round simulator makes some cells
   deadlock (a planned crash starves the round barrier): those must come
   back as [Liveness_timeout] rows while every other cell still delivers
   its result. base_seed 7 is a hunted seed giving 4 completed and 2
   timed-out cells; any exception escaping a run would instead abort the
   whole [Campaign.run]. *)
let test_one_bad_cell () =
  let spec =
    {
      Campaign.Spec.name = "one-bad-cell";
      protocol = Campaign.Spec.Round_sim_tree_aa;
      tree = Campaign.Spec.Random_tree (Campaign.Spec.Between (3, 10));
      n = Campaign.Spec.Exactly 5;
      t_budget = Campaign.Spec.Fixed_t 1;
      inputs = Campaign.Spec.Random_vertices;
      adversary = Campaign.Spec.Passive;
      faults = Campaign.Spec.Chaos { intensity = 1.0 };
      watchdogs = true;
      repetitions = 6;
      base_seed = 7;
    }
  in
  let r = Campaign.run ~workers:2 spec in
  let statuses =
    Array.map
      (fun (tr : Campaign.task_result) ->
        match tr.Campaign.result with
        | Ok o -> Runner.status_label o.Runner.status
        | Error e -> Alcotest.failf "task %d escaped as Error %s" tr.Campaign.task e)
      r.Campaign.results
  in
  check_int "all six cells report" 6 (Array.length statuses);
  let count l = Array.fold_left (fun a x -> a + if x = l then 1 else 0) 0 statuses in
  check "some cells time out" true (count "liveness-timeout" > 0);
  check "the other cells still complete" true (count "completed" > 0);
  check_int "no engine errors" 0 (count "engine-error");
  let agg = r.Campaign.aggregate in
  check_int "aggregate counts the timeouts" (count "liveness-timeout")
    agg.Campaign.timeouts;
  check_int "aggregate sees no engine errors" 0 agg.Campaign.engine_errors;
  check_int "timeouts are not violations" 0 agg.Campaign.violations;
  (* the JSONL stream records the bad cells as structured rows *)
  let jsonl = Campaign.jsonl_string r in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check "JSONL carries liveness-timeout rows" true
    (contains {|"status":"liveness-timeout"|} jsonl);
  check "JSONL footer counts timeouts" true
    (contains {|"timeouts":|} jsonl)

(* ------------------------------------------------------------------ *)
(* Report.honest_inputs: the shared hull filter *)

let prop_honest_inputs_equiv =
  QCheck2.Test.make
    ~name:"Report.honest_inputs equals the reference List.mem filter"
    ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 8 in
      let t = Rng.int rng (((n - 1) / 3) + 1) in
      let tree = Generate.random rng (2 + Rng.int rng 15) in
      let inputs = Array.init n (fun _ -> Rng.int rng (Tree.n_vertices tree)) in
      let adversary =
        if t = 0 then Adversary.passive "none"
        else
          match Rng.int rng 3 with
          | 0 -> Adversary.passive "none"
          | 1 -> Strategies.random_silent ~count:t
          | _ -> Strategies.crash ~at_round:1 ~victims:(List.init t Fun.id)
      in
      let report = Tree_aa.run ~seed ~tree ~inputs ~t ~adversary () in
      let reference =
        let initially = Report.initially_corrupted report in
        Array.to_list (Array.mapi (fun i v -> (i, v)) inputs)
        |> List.filter_map (fun (i, v) ->
               if List.mem i initially then None else Some v)
      in
      Report.honest_inputs ~inputs report = reference)

(* Regression: Quick.agree's hull filter used to be List.mem per input
   (quadratic); with the bitset it must stay instant at n = 300. *)
let test_quick_agree_large_n () =
  let tree = Generate.path 10 in
  let n = 300 in
  let t = 99 in
  let inputs = Array.init n (fun i -> i mod 10) in
  let outcome =
    Quick.agree ~tree ~inputs ~t
      ~adversary:(Strategies.silent ~victims:(List.init t (fun i -> n - 1 - i)))
      ()
  in
  check "n=300 verdict ok" true (Verdict.all_ok outcome.verdict);
  check_int "n=300 honest outputs" (n - t) (List.length outcome.outputs)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "campaign"
    [
      ( "pool",
        [
          Alcotest.test_case "slot order" `Quick test_pool_order;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "deterministic exception" `Quick
            test_pool_exception;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "task_seeds schedule" `Quick test_task_seeds;
          Alcotest.test_case "split_seed consistency" `Quick test_split_seed;
        ] );
      ( "runner",
        [
          Alcotest.test_case "tree-aa runner" `Quick test_runner_tree_aa;
          Alcotest.test_case "realaa runner" `Quick test_runner_real_aa;
        ] );
      ( "campaign",
        [
          QCheck_alcotest.to_alcotest prop_workers_invariant;
          QCheck_alcotest.to_alcotest prop_workers_invariant_chaos;
          QCheck_alcotest.to_alcotest prop_task_seeds_in_results;
          Alcotest.test_case "golden JSONL" `Quick test_golden_jsonl;
          Alcotest.test_case "JSONL round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "spec validation" `Quick test_validate;
          Alcotest.test_case "one bad cell is contained" `Quick
            test_one_bad_cell;
        ] );
      ( "hull-filter",
        [
          QCheck_alcotest.to_alcotest prop_honest_inputs_equiv;
          Alcotest.test_case "Quick.agree at n=300" `Quick
            test_quick_agree_large_n;
        ] );
    ]
