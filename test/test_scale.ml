(* Regression net for the flat-array transport refactor (PR 7).

   Three layers of evidence that the rewrite changed the constant factors
   and nothing else:

   - a qcheck equivalence drive of the flat bitmatrix mailbox against a
     re-implementation of the seed's list-and-hashtable mailbox, over
     random post / post_last_wins / fault-filter scripts;
   - pinned flight-recorder digests for every protocol runner at n = 7
     (and, behind AAT_SCALE_TESTS=1 — wired into @scale-smoke — at
     n = 300): the digest covers outcome, verdict and full telemetry
     trace, so a match is bit-identity of everything observable;
   - replay of the committed BENCH_GAP champion records: the records were
     produced by the pre-refactor engine, so a clean replay pins the
     refactored engine to historical behavior, not just to itself. *)

open Treeagree

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* 1. flat mailbox vs the seed's list-based transport, as an oracle *)

module Oracle = struct
  (* The pre-refactor mailbox delivery core, verbatim semantics: hashtable
     per-pair dedup, per-recipient cons lists re-sorted on read, fault
     decision ahead of dedup. Accounting/screening are unchanged by the
     refactor and are not duplicated here. *)
  type 'msg t = {
    n : int;
    seen : (Types.party_id * Types.party_id, unit) Hashtbl.t;
    inboxes : (Types.party_id, 'msg Types.envelope list) Hashtbl.t;
    mutable delivered_rev : 'msg Types.letter list;
    mutable filter : Mailbox.fault_filter option;
    mutable round : Types.round;
  }

  let create ~n =
    {
      n;
      seen = Hashtbl.create 64;
      inboxes = Hashtbl.create 16;
      delivered_rev = [];
      filter = None;
      round = 0;
    }

  let set_fault_filter o f = o.filter <- Some f

  let begin_round ~round o =
    o.round <- round;
    Hashtbl.reset o.seen;
    Hashtbl.reset o.inboxes;
    o.delivered_rev <- []

  let post o (l : 'msg Types.letter) =
    let verdict =
      match o.filter with
      | None -> `Deliver
      | Some f -> (
          match f ~round:o.round ~src:l.src ~dst:l.dst with
          | Mailbox.Drop -> `Drop
          | Mailbox.Deliver | Mailbox.Duplicate | Mailbox.Delay _ -> `Deliver)
    in
    if verdict = `Deliver && not (Hashtbl.mem o.seen (l.src, l.dst)) then begin
      Hashtbl.replace o.seen (l.src, l.dst) ();
      o.delivered_rev <- l :: o.delivered_rev;
      let prev = Option.value ~default:[] (Hashtbl.find_opt o.inboxes l.dst) in
      Hashtbl.replace o.inboxes l.dst
        ({ Types.sender = l.src; payload = l.body } :: prev)
    end

  let post_last_wins o letters = List.iter (post o) (List.rev letters)

  let inbox o p =
    Option.value ~default:[] (Hashtbl.find_opt o.inboxes p)
    |> List.sort (fun (a : _ Types.envelope) b -> compare a.sender b.sender)

  let delivered o = o.delivered_rev
end

(* A pure drop filter: no internal RNG state, so feeding it to both
   mailboxes cannot desynchronize a stream (the real probabilistic
   filters are stateful, but the engines call them on identical letter
   sequences — which is exactly what this test establishes). *)
let drop_filter ~salt ~round ~src ~dst =
  if ((round * 31) + (src * 7) + (dst * 3) + salt) mod 5 = 0 then Mailbox.Drop
  else Mailbox.Deliver

let prop_mailbox_matches_oracle =
  QCheck2.Test.make ~name:"flat mailbox == seed list mailbox" ~count:300
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 7 in
      let mb : int Mailbox.t = Mailbox.create ~n in
      let o : int Oracle.t = Oracle.create ~n in
      (if Rng.bool rng then begin
         let salt = Rng.int rng 100 in
         Mailbox.set_fault_filter mb (drop_filter ~salt);
         Oracle.set_fault_filter o (drop_filter ~salt)
       end);
      let letter () =
        {
          Types.src = Rng.int rng n;
          dst = Rng.int rng n;
          body = Rng.int rng 1000;
        }
      in
      for round = 1 to 4 do
        Mailbox.begin_round ~round mb;
        Oracle.begin_round ~round o;
        (* a burst of first-posted-wins singles... *)
        for _ = 1 to Rng.int rng (3 * n * n) do
          let l = letter () in
          Mailbox.post mb l;
          Oracle.post o l
        done;
        (* ...then a last-submitted-wins adversary batch *)
        let batch = List.init (Rng.int rng (n * n)) (fun _ -> letter ()) in
        Mailbox.post_last_wins mb batch;
        Oracle.post_last_wins o batch;
        for p = 0 to n - 1 do
          if Mailbox.inbox mb p <> Oracle.inbox o p then
            QCheck2.Test.fail_reportf "round %d: inbox %d differs" round p
        done;
        let d_mb = Mailbox.delivered mb and d_o = Oracle.delivered o in
        if d_mb <> d_o then
          QCheck2.Test.fail_reportf "round %d: delivered list differs" round;
        if Mailbox.delivered_count mb <> List.length d_o then
          QCheck2.Test.fail_reportf "round %d: delivered count differs" round
      done;
      true)

(* the delivered counter keeps counting when list tracking is off *)
let test_untracked_count () =
  let mb : int Mailbox.t = Mailbox.create ~n:4 in
  Mailbox.set_delivered_tracking mb false;
  Mailbox.begin_round ~round:1 mb;
  List.iter (Mailbox.post mb)
    [
      { Types.src = 0; dst = 1; body = 10 };
      { Types.src = 0; dst = 1; body = 11 };
      (* deduped *)
      { Types.src = 2; dst = 3; body = 12 };
    ];
  check "list suppressed" true (Mailbox.delivered mb = []);
  Alcotest.(check int) "count maintained" 2 (Mailbox.delivered_count mb);
  check "inbox intact" true
    (List.map (fun (e : _ Types.envelope) -> (e.sender, e.payload))
       (Mailbox.inbox mb 1)
    = [ (0, 10) ])

(* ------------------------------------------------------------------ *)
(* 2. pinned flight-recorder digests — every protocol runner, both
      engines, same specs the seed engine was measured on *)

let golden_spec ~n ~t name protocol tree inputs adversary =
  {
    Campaign.Spec.name;
    protocol;
    tree;
    n = Campaign.Spec.Exactly n;
    t_budget = Campaign.Spec.Fixed_t t;
    inputs;
    adversary;
    faults = Campaign.Spec.No_faults;
    watchdogs = true;
    repetitions = 1;
    base_seed = 7;
  }

let golden_specs ~n ~t =
  let open Campaign.Spec in
  let star9 = Star_tree (Exactly 9) and path12 = Path_tree (Exactly 12) in
  [
    golden_spec ~n ~t "tree-aa" Tree_aa star9 Random_vertices Random_silent;
    golden_spec ~n ~t "nr-baseline" Nr_baseline star9 Random_vertices
      Random_silent;
    golden_spec ~n ~t "path-aa" Path_aa path12 Random_vertices Random_silent;
    golden_spec ~n ~t "known-path-aa" Known_path_aa path12 Random_vertices
      Random_silent;
    golden_spec ~n ~t "realaa" (Real_aa { eps = 1.0 }) path12
      (Linspace_reals 1000.) Random_silent;
    golden_spec ~n ~t "iterated-midpoint"
      (Iterated_midpoint { eps = 1.0 })
      path12 (Linspace_reals 1000.) Random_silent;
    golden_spec ~n ~t "async-tree-aa" Async_tree_aa star9 Random_vertices
      Passive;
    golden_spec ~n ~t "round-sim-tree-aa" Round_sim_tree_aa star9
      Random_vertices Passive;
  ]

(* Digests recorded from the pre-refactor (seed) engine on these exact
   specs with task_seed 42. Regenerate only for a deliberate,
   semantics-changing engine release. *)
let golden_n7 =
  [
    ("tree-aa", "93b2093ca77120ef1e33ebe04f68bf70");
    ("nr-baseline", "7ceb1029d6c42124c8975d2bc8dca326");
    ("path-aa", "6c0ba5dda902b5d529db8d9809261be5");
    ("known-path-aa", "bb75d844577f082a49dcc652393b12d5");
    ("realaa", "6a190ac4e64accc69f9289e3fe7826a3");
    ("iterated-midpoint", "57efe0092d8eea3c24c70a6b261027cf");
    ("async-tree-aa", "dee502349697facaba9f6362db0ad6b6");
    ("round-sim-tree-aa", "f95b485566c3db8efa008decb9c1646f");
  ]

let golden_n300 =
  [
    ("tree-aa", "947badc98e6c01207d9b8355abac23d0");
    ("nr-baseline", "681a2ba1ee64fa10110c1ed316e34ae9");
    ("path-aa", "45e2ecb4e255d4828aba8dc2c4c4eafe");
    ("known-path-aa", "bc0055e6a41289dc7fcb7ebfab1f3238");
    ("realaa", "b5fb8b491fee7d17cedc4ea65ddc328a");
    ("iterated-midpoint", "7986f6f4801f0756a08d4c688e4cc451");
  ]

let check_golden ~n ~t expected =
  let specs = golden_specs ~n ~t in
  List.iter
    (fun (name, want) ->
      let spec = List.find (fun s -> s.Campaign.Spec.name = name) specs in
      match Recorder.record spec ~task_seed:42 with
      | Error m -> Alcotest.failf "%s (n=%d): record failed: %s" name n m
      | Ok (r, _) -> (
          match r.Recorder.digest with
          | None -> Alcotest.failf "%s (n=%d): record carries no digest" name n
          | Some got ->
              Alcotest.(check string)
                (Printf.sprintf "%s n=%d digest" name n)
                want got))
    expected

let test_goldens_n7 () = check_golden ~n:7 ~t:2 golden_n7

(* The n = 300 rows take ~1.5 min together — out of tier-1, attached to
   @scale-smoke via AAT_SCALE_TESTS=1. *)
let test_goldens_n300 () =
  match Sys.getenv_opt "AAT_SCALE_TESTS" with
  | Some "1" -> check_golden ~n:300 ~t:99 golden_n300
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* 3. committed GAP champion records replay without divergence *)

let find_repo_root () =
  let rec up dir depth =
    if depth > 8 then None
    else if Sys.file_exists (Filename.concat dir "records/gap") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

let test_champion_replay () =
  match find_repo_root () with
  | None -> Alcotest.fail "records/gap not found above cwd"
  | Some root ->
      let dir = Filename.concat root "records/gap" in
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f >= 8 && String.sub f 0 8 = "champion")
        |> List.sort compare
      in
      check "champion records present" true (List.length files >= 4);
      List.iter
        (fun f ->
          let path = Filename.concat dir f in
          match Recorder.read_file path with
          | Error m -> Alcotest.failf "%s: unreadable: %s" f m
          | Ok record -> (
              match Replay.run record with
              | Error m -> Alcotest.failf "%s: replay failed: %s" f m
              | Ok replay -> (
                  match replay.Replay.verdict with
                  | Ok () -> ()
                  | Error d ->
                      Alcotest.failf "%s: DIVERGED — %a" f Replay.pp_divergence
                        d)))
        files

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "scale"
    [
      ( "mailbox",
        [
          QCheck_alcotest.to_alcotest prop_mailbox_matches_oracle;
          Alcotest.test_case "untracked delivered count" `Quick
            test_untracked_count;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "n=7 all protocols" `Quick test_goldens_n7;
          Alcotest.test_case "n=300 (AAT_SCALE_TESTS=1)" `Slow
            test_goldens_n300;
        ] );
      ( "champions",
        [ Alcotest.test_case "GAP records replay clean" `Quick
            test_champion_replay ] );
    ]
