(* Tests for the sharded multi-process campaign service: the distributed
   determinism contract (coordinator sharding over 1/2/4 worker
   *processes* produces JSONL bit-identical to the in-process
   [Campaign.run ~workers:1] — which also pins the wire round-trip and
   the [fold_outcome_json] aggregate twin), and crash-resume (a halted
   coordinator's record-dir restores every checkpointed cell untouched
   and recomputes nothing). *)

open Treeagree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Small random specs spanning protocols, adversaries and fault modes —
   the footer line folds the aggregate, so stream equality also proves
   the JSON-side aggregate fold matches the outcome-side one across
   excused / timed-out / faulted cells. *)
let spec_of_seed seed =
  let open Campaign.Spec in
  let rng = Rng.create seed in
  let protocol, inputs, adversary =
    match Rng.int rng 4 with
    | 0 -> (Tree_aa, Random_vertices, Any_tree_adversary)
    | 1 -> (Nr_baseline, Random_vertices, Random_silent)
    | 2 ->
        ( Real_aa { eps = 1. },
          Log_uniform_reals { log10_min = 1.; log10_max = 3. },
          Any_real_adversary )
    | _ -> (Iterated_midpoint { eps = 1. }, Linspace_reals 50., Real_spoiler)
  in
  let faults, watchdogs =
    match Rng.int rng 3 with
    | 0 -> (Chaos { intensity = 0.3 +. Rng.float rng 0.7 }, true)
    | 1 ->
        ( Fault_plan
            [
              Fault_plan.Omission { prob = 0.05; scope = Fault_plan.All };
              Fault_plan.Crash { party = 0; at_round = 2 };
            ],
          Rng.bool rng )
    | _ -> (No_faults, true)
  in
  {
    name = "svc-prop";
    protocol;
    tree = Random_tree (Between (2, 12));
    n = Between (4, 7);
    t_budget = Up_to_third;
    inputs;
    adversary;
    faults;
    watchdogs;
    repetitions = 2 + Rng.int rng 3;
    base_seed = seed;
  }

let service_stream ?workers ?record_dir ?halt_after_cells spec =
  match Service.run ?workers ?record_dir ?halt_after_cells spec with
  | Ok r -> r
  | Error e -> Alcotest.fail ("Service.run: " ^ e)

(* ------------------------------------------------------------------ *)
(* distributed determinism *)

let prop_distributed_invariant =
  QCheck2.Test.make
    ~name:
      "service: 1/2/4 worker processes are bit-identical to in-process \
       workers:1"
    ~count:5
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let spec = spec_of_seed seed in
      let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in
      List.for_all
        (fun w ->
          match Service.run ~workers:w spec with
          | Ok r ->
              r.Service.status = Service.Completed
              && Service.jsonl_string r = baseline
          | Error _ -> false)
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* crash-resume *)

let fixed_spec =
  {
    Campaign.Spec.name = "svc-resume";
    protocol = Campaign.Spec.Tree_aa;
    tree = Campaign.Spec.Random_tree (Campaign.Spec.Between (2, 10));
    n = Campaign.Spec.Between (4, 7);
    t_budget = Campaign.Spec.Up_to_third;
    inputs = Campaign.Spec.Random_vertices;
    adversary = Campaign.Spec.Any_tree_adversary;
    faults = Campaign.Spec.Chaos { intensity = 0.3 };
    watchdogs = true;
    repetitions = 8;
    base_seed = 77;
  }

let cell_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".record.jsonl")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_resume_recomputes_nothing () =
  let spec = fixed_spec in
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in
  let dir = Filename.temp_dir "svc-resume" "" in
  (* Simulated coordinator crash: halt after 3 cells, workers killed. *)
  let halted = service_stream ~workers:2 ~record_dir:dir ~halt_after_cells:3 spec in
  (match halted.Service.status with
  | Service.Halted { cells_done } ->
      check "halted with partial progress" true
        (cells_done >= 3 && cells_done < spec.Campaign.Spec.repetitions)
  | Service.Completed -> Alcotest.fail "expected a halted campaign");
  let before = cell_files dir in
  check "partial record-dir" true
    (before <> [] && List.length before < spec.Campaign.Spec.repetitions);
  let snapshot = List.map (fun f -> (f, read_file (Filename.concat dir f))) before in
  (* Resume: every checkpointed cell restored, none recomputed. *)
  let resumed = service_stream ~workers:2 ~record_dir:dir spec in
  check "resume completes" true (resumed.Service.status = Service.Completed);
  check_int "every checkpoint resumed" (List.length before)
    resumed.Service.manifest.Service.resumed;
  check_int "computed exactly the remainder"
    (spec.Campaign.Spec.repetitions - List.length before)
    resumed.Service.manifest.Service.computed;
  List.iter
    (fun (f, s) ->
      check_string
        (Printf.sprintf "checkpoint %s untouched by resume" f)
        s
        (read_file (Filename.concat dir f)))
    snapshot;
  check_string "resumed stream equals the uninterrupted run" baseline
    (Service.jsonl_string resumed);
  (* A third run over the now-complete record-dir recomputes nothing at
     all: cell count unchanged, no workers spawned. *)
  let complete = cell_files dir in
  check_int "record-dir holds the full grid" spec.Campaign.Spec.repetitions
    (List.length complete);
  let again = service_stream ~workers:4 ~record_dir:dir spec in
  check_int "full resume computes zero cells" 0
    again.Service.manifest.Service.computed;
  check_int "full resume spawns no workers" 0
    again.Service.manifest.Service.workers;
  check_int "record-dir cell count unchanged" (List.length complete)
    (List.length (cell_files dir));
  check_string "fully-resumed stream still identical" baseline
    (Service.jsonl_string again)

let test_checkpoints_replay () =
  (* Service checkpoints are genuine flight records: `treeaa replay`'s
     engine re-executes them and must match the recorded digest. *)
  let dir = Filename.temp_dir "svc-replay" "" in
  let r = service_stream ~workers:2 ~record_dir:dir fixed_spec in
  check "completed" true (r.Service.status = Service.Completed);
  List.iter
    (fun f ->
      match Recorder.read_file (Filename.concat dir f) with
      | Error e -> Alcotest.fail (f ^ ": " ^ e)
      | Ok record -> (
          match Replay.run record with
          | Error e -> Alcotest.fail (f ^ ": replay failed: " ^ e)
          | Ok replay -> (
              match replay.Replay.verdict with
              | Ok () -> ()
              | Error d ->
                  Alcotest.fail
                    (Format.asprintf "%s: replay diverged: %a" f
                       Replay.pp_divergence d))))
    (cell_files dir)

let test_empty_grid () =
  let spec = { fixed_spec with Campaign.Spec.repetitions = 0 } in
  let r = service_stream ~workers:3 spec in
  check "completed" true (r.Service.status = Service.Completed);
  check_int "no workers spawned" 0 r.Service.manifest.Service.workers;
  check_string "stream matches in-process"
    (Campaign.jsonl_string (Campaign.run ~workers:1 spec))
    (Service.jsonl_string r)

let () =
  Alcotest.run "service"
    [
      ( "distributed",
        [ QCheck_alcotest.to_alcotest prop_distributed_invariant ] );
      ( "crash-resume",
        [
          Alcotest.test_case "halt + resume recomputes nothing" `Quick
            test_resume_recomputes_nothing;
          Alcotest.test_case "checkpoints replay bit-identically" `Quick
            test_checkpoints_replay;
        ] );
      ( "edge",
        [ Alcotest.test_case "empty grid" `Quick test_empty_grid ] );
    ]
