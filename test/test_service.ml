(* Tests for the sharded multi-process campaign service: the distributed
   determinism contract (coordinator sharding over 1/2/4 worker
   *processes* produces JSONL bit-identical to the in-process
   [Campaign.run ~workers:1] — which also pins the wire round-trip and
   the [fold_outcome_json] aggregate twin), crash-resume (a halted
   coordinator's record-dir restores every checkpointed cell untouched
   and recomputes nothing), the checksummed wire framing (fuzzed frame
   recovery: typed errors, never an exception escape), checkpoint
   quarantine, wire-chaos drills and graceful degradation. *)

open Treeagree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Small random specs spanning protocols, adversaries and fault modes —
   the footer line folds the aggregate, so stream equality also proves
   the JSON-side aggregate fold matches the outcome-side one across
   excused / timed-out / faulted cells. *)
let spec_of_seed seed =
  let open Campaign.Spec in
  let rng = Rng.create seed in
  let protocol, inputs, adversary =
    match Rng.int rng 4 with
    | 0 -> (Tree_aa, Random_vertices, Any_tree_adversary)
    | 1 -> (Nr_baseline, Random_vertices, Random_silent)
    | 2 ->
        ( Real_aa { eps = 1. },
          Log_uniform_reals { log10_min = 1.; log10_max = 3. },
          Any_real_adversary )
    | _ -> (Iterated_midpoint { eps = 1. }, Linspace_reals 50., Real_spoiler)
  in
  let faults, watchdogs =
    match Rng.int rng 3 with
    | 0 -> (Chaos { intensity = 0.3 +. Rng.float rng 0.7 }, true)
    | 1 ->
        ( Fault_plan
            [
              Fault_plan.Omission { prob = 0.05; scope = Fault_plan.All };
              Fault_plan.Crash { party = 0; at_round = 2 };
            ],
          Rng.bool rng )
    | _ -> (No_faults, true)
  in
  {
    name = "svc-prop";
    protocol;
    tree = Random_tree (Between (2, 12));
    n = Between (4, 7);
    t_budget = Up_to_third;
    inputs;
    adversary;
    faults;
    watchdogs;
    repetitions = 2 + Rng.int rng 3;
    base_seed = seed;
  }

let service_stream ?workers ?record_dir ?halt_after_cells spec =
  match Service.run ?workers ?record_dir ?halt_after_cells spec with
  | Ok r -> r
  | Error e -> Alcotest.fail ("Service.run: " ^ e)

(* ------------------------------------------------------------------ *)
(* wire framing: fuzzed frame recovery *)

(* Feed a byte stream into a fresh reader in the given chunks; collect
   recovered payloads and typed errors. Any exception escaping the
   reader is itself a failure. *)
let feed_chunks chunks =
  let reader = Service_wire.Reader.create Unix.stdin in
  List.concat_map
    (fun chunk ->
      match Service_wire.Reader.feed reader chunk with
      | events -> events
      | exception exn ->
          Alcotest.fail ("Reader.feed raised: " ^ Printexc.to_string exn))
    chunks

let oks events = List.filter_map (function Ok f -> Some f | Error _ -> None) events
let errs events = List.filter_map (function Ok _ -> None | Error e -> Some e) events

let encode_all payloads =
  String.concat ""
    (List.map (fun p -> Bytes.to_string (Service_wire.encode p)) payloads)

let test_wire_every_boundary () =
  (* A 3-frame stream split at every byte boundary must reassemble to
     exactly the original payloads, with no errors — including splits
     inside the magic, the length field, the checksum and the payload. *)
  let payloads = [ "{\"type\":\"ready\",\"pid\":42}"; ""; "{\"x\":[1,2,3]}" ] in
  let stream = encode_all payloads in
  for cut = 0 to String.length stream do
    let events =
      feed_chunks
        [
          String.sub stream 0 cut;
          String.sub stream cut (String.length stream - cut);
        ]
    in
    Alcotest.(check (list string))
      (Printf.sprintf "split at byte %d" cut)
      payloads (oks events);
    check "no spurious errors" true (errs events = [])
  done

(* Garbage is printable ASCII: the frame magic is non-ASCII, so noise
   can never fake a frame boundary (payload bytes are arbitrary — a
   framed payload may legitimately contain the magic). *)
let gen_garbage =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (1 -- 40))

let gen_payload = QCheck2.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 60))

let gen_chunked_stream =
  QCheck2.Gen.(
    let* payloads = list_size (1 -- 6) gen_payload in
    let* garbage = gen_garbage in
    let* garbage_at = 0 -- List.length payloads in
    (* the garbage slots in between frames, including before the first *)
    let stream =
      String.concat ""
        (List.concat
           (List.mapi
              (fun i p ->
                let frame = Bytes.to_string (Service_wire.encode p) in
                if i = garbage_at then [ garbage; frame ] else [ frame ])
              payloads)
        @ if garbage_at = List.length payloads then [ garbage ] else [])
    in
    (* random chunking, byte-exact *)
    let* cuts =
      list_size (0 -- 8) (int_bound (max 0 (String.length stream - 1)))
    in
    let cuts = List.sort_uniq compare (0 :: cuts @ [ String.length stream ]) in
    let rec chunks = function
      | a :: (b :: _ as rest) -> String.sub stream a (b - a) :: chunks rest
      | _ -> []
    in
    return (payloads, garbage, chunks cuts))

let prop_wire_fuzz =
  QCheck2.Test.make
    ~name:
      "wire: garbage-interleaved chunked streams recover every frame with \
       typed errors only"
    ~count:300 gen_chunked_stream
    (fun (payloads, _garbage, chunks) ->
      let events = feed_chunks chunks in
      (* every frame recovered, in order *)
      oks events = payloads
      (* the injected garbage surfaces as Garbage errors only *)
      && List.for_all
           (function Service_wire.Reader.Garbage _ -> true | _ -> false)
           (errs events))

let test_wire_corrupt_payload () =
  (* Flip a payload byte mid-stream: the damaged frame surfaces as a
     checksum mismatch, the neighbours are still recovered exactly. *)
  let f1 = "{\"type\":\"heartbeat\"}" in
  let f2 = "{\"type\":\"cell\",\"task\":3}" in
  let f3 = "{\"type\":\"shard-done\"}" in
  let stream = Bytes.of_string (encode_all [ f1; f2; f3 ]) in
  let f1_len = Bytes.length (Service_wire.encode f1) in
  (* a payload byte of the second frame: header is 12 bytes *)
  Bytes.set stream (f1_len + 12 + 5)
    (Char.chr (Char.code (Bytes.get stream (f1_len + 12 + 5)) lxor 0xFF));
  let events = feed_chunks [ Bytes.to_string stream ] in
  Alcotest.(check (list string)) "intact frames recovered" [ f1; f3 ] (oks events);
  check "a checksum mismatch was reported" true
    (List.exists
       (function
         | Service_wire.Reader.Checksum_mismatch _ -> true | _ -> false)
       (errs events))

let test_wire_corrupt_length () =
  (* Blow up the length field: typed Oversized_frame, then recovery. *)
  let f1 = "{\"a\":1}" and f2 = "{\"b\":2}" in
  let stream = Bytes.of_string (encode_all [ f1; f2 ]) in
  Bytes.set stream 4 '\xFF' (* high byte of frame 1's length field *);
  let events = feed_chunks [ Bytes.to_string stream ] in
  Alcotest.(check (list string)) "second frame recovered" [ f2 ] (oks events);
  check "an oversized-frame error was reported" true
    (List.exists
       (function Service_wire.Reader.Oversized_frame _ -> true | _ -> false)
       (errs events))

(* ------------------------------------------------------------------ *)
(* wire chaos plan grammar *)

let test_chaos_grammar () =
  (match Service_chaos.parse "corrupt-frame:0.2+stall:0.1:0.05+seed:9" with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check "corrupt parsed" true (p.Service_chaos.corrupt_frame = 0.2);
      check "stall parsed" true
        (p.Service_chaos.stall_prob = 0.1
        && p.Service_chaos.stall_seconds = 0.05);
      check "seed parsed" true (p.Service_chaos.seed = 9);
      (* round-trip *)
      match Service_chaos.parse (Service_chaos.to_string p) with
      | Ok p' -> check "roundtrip" true (p = p')
      | Error e -> Alcotest.fail ("roundtrip: " ^ e));
  (match Service_chaos.parse "drop-frame:0.3;dup-frame:0.1" with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check "both separators accepted" true
        (p.Service_chaos.drop_frame = 0.3 && p.Service_chaos.dup_frame = 0.1));
  check "none is empty" true (Service_chaos.parse "none" = Ok Service_chaos.none);
  check "bad prob rejected" true
    (Result.is_error (Service_chaos.parse "corrupt-frame:1.5"));
  check "unknown clause rejected" true
    (Result.is_error (Service_chaos.parse "melt-wire:0.5"))

let test_chaos_deterministic_schedule () =
  (* The same endpoint sees the same fault schedule on every run; a
     different slot sees an independent one. *)
  let plan =
    match Service_chaos.parse "corrupt-frame:0.5+drop-frame:0.5+seed:3" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let writes_of ~slot ~incarnation =
    let st =
      Service_chaos.endpoint plan ~role:Service_chaos.Worker ~slot ~incarnation
    in
    List.init 40 (fun i ->
        let frame = Service_wire.encode (Printf.sprintf "{\"i\":%d}" i) in
        let out = ref [] in
        Service_chaos.apply st frame ~write:(fun b ->
            out := Bytes.to_string b :: !out);
        List.rev !out)
  in
  check "schedule replays bit-identically" true
    (writes_of ~slot:0 ~incarnation:0 = writes_of ~slot:0 ~incarnation:0);
  check "another slot draws an independent schedule" true
    (writes_of ~slot:0 ~incarnation:0 <> writes_of ~slot:1 ~incarnation:0);
  check "a respawn draws a fresh schedule" true
    (writes_of ~slot:0 ~incarnation:0 <> writes_of ~slot:0 ~incarnation:1)

(* ------------------------------------------------------------------ *)
(* distributed determinism *)

let prop_distributed_invariant =
  QCheck2.Test.make
    ~name:
      "service: 1/2/4 worker processes are bit-identical to in-process \
       workers:1"
    ~count:5
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let spec = spec_of_seed seed in
      let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in
      List.for_all
        (fun w ->
          match Service.run ~workers:w spec with
          | Ok r ->
              r.Service.status = Service.Completed
              && Service.jsonl_string r = baseline
          | Error _ -> false)
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* crash-resume *)

let fixed_spec =
  {
    Campaign.Spec.name = "svc-resume";
    protocol = Campaign.Spec.Tree_aa;
    tree = Campaign.Spec.Random_tree (Campaign.Spec.Between (2, 10));
    n = Campaign.Spec.Between (4, 7);
    t_budget = Campaign.Spec.Up_to_third;
    inputs = Campaign.Spec.Random_vertices;
    adversary = Campaign.Spec.Any_tree_adversary;
    faults = Campaign.Spec.Chaos { intensity = 0.3 };
    watchdogs = true;
    repetitions = 8;
    base_seed = 77;
  }

let cell_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".record.jsonl")
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_resume_recomputes_nothing () =
  let spec = fixed_spec in
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in
  let dir = Filename.temp_dir "svc-resume" "" in
  (* Simulated coordinator crash: halt after 3 cells, workers killed. *)
  let halted = service_stream ~workers:2 ~record_dir:dir ~halt_after_cells:3 spec in
  (match halted.Service.status with
  | Service.Halted { cells_done } ->
      check "halted with partial progress" true
        (cells_done >= 3 && cells_done < spec.Campaign.Spec.repetitions)
  | Service.Completed -> Alcotest.fail "expected a halted campaign");
  let before = cell_files dir in
  check "partial record-dir" true
    (before <> [] && List.length before < spec.Campaign.Spec.repetitions);
  let snapshot = List.map (fun f -> (f, read_file (Filename.concat dir f))) before in
  (* Resume: every checkpointed cell restored, none recomputed. *)
  let resumed = service_stream ~workers:2 ~record_dir:dir spec in
  check "resume completes" true (resumed.Service.status = Service.Completed);
  check_int "every checkpoint resumed" (List.length before)
    resumed.Service.manifest.Service.resumed;
  check_int "computed exactly the remainder"
    (spec.Campaign.Spec.repetitions - List.length before)
    resumed.Service.manifest.Service.computed;
  List.iter
    (fun (f, s) ->
      check_string
        (Printf.sprintf "checkpoint %s untouched by resume" f)
        s
        (read_file (Filename.concat dir f)))
    snapshot;
  check_string "resumed stream equals the uninterrupted run" baseline
    (Service.jsonl_string resumed);
  (* A third run over the now-complete record-dir recomputes nothing at
     all: cell count unchanged, no workers spawned. *)
  let complete = cell_files dir in
  check_int "record-dir holds the full grid" spec.Campaign.Spec.repetitions
    (List.length complete);
  let again = service_stream ~workers:4 ~record_dir:dir spec in
  check_int "full resume computes zero cells" 0
    again.Service.manifest.Service.computed;
  check_int "full resume spawns no workers" 0
    again.Service.manifest.Service.workers;
  check_int "record-dir cell count unchanged" (List.length complete)
    (List.length (cell_files dir));
  check_string "fully-resumed stream still identical" baseline
    (Service.jsonl_string again)

let test_checkpoints_replay () =
  (* Service checkpoints are genuine flight records: `treeaa replay`'s
     engine re-executes them and must match the recorded digest. *)
  let dir = Filename.temp_dir "svc-replay" "" in
  let r = service_stream ~workers:2 ~record_dir:dir fixed_spec in
  check "completed" true (r.Service.status = Service.Completed);
  List.iter
    (fun f ->
      match Recorder.read_file (Filename.concat dir f) with
      | Error e -> Alcotest.fail (f ^ ": " ^ e)
      | Ok record -> (
          match Replay.run record with
          | Error e -> Alcotest.fail (f ^ ": replay failed: " ^ e)
          | Ok replay -> (
              match replay.Replay.verdict with
              | Ok () -> ()
              | Error d ->
                  Alcotest.fail
                    (Format.asprintf "%s: replay diverged: %a" f
                       Replay.pp_divergence d))))
    (cell_files dir)

(* ------------------------------------------------------------------ *)
(* checkpoint hardening: quarantine + stale tmp sweep *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let quarantine_files dir =
  let q = Filename.concat dir "quarantine" in
  if Sys.file_exists q then Sys.readdir q |> Array.to_list |> List.sort compare
  else []

let test_stale_tmp_quarantined () =
  (* A .tmp left by a SIGKILLed worker must be swept aside on resume,
     never scanned as a checkpoint. *)
  let spec = { fixed_spec with Campaign.Spec.name = "svc-tmp" } in
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in
  let dir = Filename.temp_dir "svc-tmp" "" in
  write_file
    (Filename.concat dir "cell-0002.record.jsonl.tmp")
    "{\"type\":\"run-record\" TRUNCATED MID-WRITE";
  let r = service_stream ~workers:2 ~record_dir:dir spec in
  check "completes" true (r.Service.status = Service.Completed);
  check_int "tmp counted as quarantined" 1 r.Service.manifest.Service.quarantined;
  check "tmp moved out of the scan path" false
    (Sys.file_exists (Filename.concat dir "cell-0002.record.jsonl.tmp"));
  check_int "tmp landed in quarantine/" 1 (List.length (quarantine_files dir));
  check "not degraded" false r.Service.manifest.Service.degraded;
  check_string "stream identical" baseline (Service.jsonl_string r)

let test_corrupt_checkpoints_quarantined () =
  (* Truncated, bit-flipped and garbage checkpoint files are moved to
     quarantine/ and their cells recomputed; the stream is unaffected. *)
  let spec = { fixed_spec with Campaign.Spec.name = "svc-quar" } in
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in
  let dir = Filename.temp_dir "svc-quar" "" in
  let r0 = service_stream ~workers:2 ~record_dir:dir spec in
  check "first run completes" true (r0.Service.status = Service.Completed);
  let reps = spec.Campaign.Spec.repetitions in
  check_int "full record dir" reps (List.length (cell_files dir));
  let cell i = Filename.concat dir (Printf.sprintf "cell-%04d.record.jsonl" i) in
  (* truncate cell 0 *)
  let c0 = read_file (cell 0) in
  write_file (cell 0) (String.sub c0 0 (String.length c0 / 2));
  (* flip the recorded digest of cell 1: parses, fails verification *)
  let c1 = read_file (cell 1) in
  let idx =
    let marker = "\"digest\":\"" in
    let rec find i =
      if String.sub c1 i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    find 0
  in
  let b = Bytes.of_string c1 in
  Bytes.set b idx (if Bytes.get b idx = 'f' then '0' else 'f');
  write_file (cell 1) (Bytes.to_string b);
  (* cell 2 becomes plain garbage *)
  write_file (cell 2) "this is not a flight record\n";
  let r = service_stream ~workers:2 ~record_dir:dir spec in
  check "resume completes" true (r.Service.status = Service.Completed);
  check_int "three files quarantined" 3 r.Service.manifest.Service.quarantined;
  check_int "the rest resumed" (reps - 3) r.Service.manifest.Service.resumed;
  check_int "exactly the damaged cells recomputed" 3
    r.Service.manifest.Service.computed;
  check_int "quarantine holds the evidence" 3
    (List.length (quarantine_files dir));
  check_int "record dir repopulated" reps (List.length (cell_files dir));
  check_string "stream identical" baseline (Service.jsonl_string r)

(* ------------------------------------------------------------------ *)
(* wire chaos drills + graceful degradation *)

let chaos_plan =
  match
    Service_chaos.parse
      "corrupt-frame:0.08+torn-write:0.05+drop-frame:0.05+dup-frame:0.08\
       +stall:0.05:0.01+seed:5"
  with
  | Ok p -> p
  | Error e -> failwith e

let chaos_spec =
  {
    fixed_spec with
    Campaign.Spec.name = "svc-chaos";
    repetitions = 6;
    base_seed = 31;
  }

let run_under_chaos ?(workers = 2) ?record_dir ?kill_worker_after_cells spec =
  Service.run ~workers ?record_dir ~heartbeat_period:0.05
    ~heartbeat_timeout:2. ~max_respawns:50 ~respawn_backoff:0.02
    ~progress_timeout:0.5 ~wire_chaos:chaos_plan ?kill_worker_after_cells spec

let test_chaos_workers_invariant () =
  (* The acceptance drill: under an active wire-chaos plan (all five
     fault kinds) plus a worker SIGKILL, every worker count produces the
     byte-identical stream of the undisturbed in-process run, and the
     generous respawn budget keeps the run from degrading. *)
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 chaos_spec) in
  List.iter
    (fun workers ->
      match
        run_under_chaos ~workers ~kill_worker_after_cells:2 chaos_spec
      with
      | Error e -> Alcotest.fail (Printf.sprintf "workers:%d: %s" workers e)
      | Ok r ->
          check
            (Printf.sprintf "workers:%d completes" workers)
            true
            (r.Service.status = Service.Completed);
          check
            (Printf.sprintf "workers:%d not degraded" workers)
            false r.Service.manifest.Service.degraded;
          check_string
            (Printf.sprintf "workers:%d stream identical under chaos" workers)
            baseline (Service.jsonl_string r))
    [ 1; 2; 4 ]

let test_chaos_resume_bit_identical () =
  (* Chaos + coordinator crash + resume under chaos: still the exact
     baseline stream, with checkpoints accounted for. *)
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 chaos_spec) in
  let dir = Filename.temp_dir "svc-chaos-resume" "" in
  let halted =
    match
      Service.run ~workers:2 ~record_dir:dir ~heartbeat_period:0.05
        ~heartbeat_timeout:2. ~max_respawns:50 ~respawn_backoff:0.02
        ~progress_timeout:0.5 ~wire_chaos:chaos_plan ~halt_after_cells:2
        chaos_spec
    with
    | Ok r -> r
    | Error e -> Alcotest.fail ("chaos halt: " ^ e)
  in
  (match halted.Service.status with
  | Service.Halted _ -> ()
  | Service.Completed -> Alcotest.fail "expected a halted campaign");
  let resumed =
    match run_under_chaos ~workers:2 ~record_dir:dir chaos_spec with
    | Ok r -> r
    | Error e -> Alcotest.fail ("chaos resume: " ^ e)
  in
  check "resume completes" true (resumed.Service.status = Service.Completed);
  check "checkpoints were resumed" true
    (resumed.Service.manifest.Service.resumed >= 2);
  check_string "stream identical after chaos resume" baseline
    (Service.jsonl_string resumed)

let test_degraded_completion () =
  (* Respawn budget zero + one SIGKILL: the dead slot becomes a
     permanent failure, the survivor finishes the whole grid, and the
     manifest reports the degradation instead of the run aborting. *)
  let spec = { fixed_spec with Campaign.Spec.name = "svc-degraded" } in
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in
  match
    Service.run ~workers:2 ~max_respawns:0 ~kill_worker_after_cells:1 spec
  with
  | Error e -> Alcotest.fail ("degraded run aborted: " ^ e)
  | Ok r ->
      check "completes on the surviving pool" true
        (r.Service.status = Service.Completed);
      check "manifest says degraded" true r.Service.manifest.Service.degraded;
      check_int "one permanent failure" 1
        (List.length r.Service.manifest.Service.failures);
      (match r.Service.manifest.Service.failures with
      | [ f ] ->
          check "budget was exhausted" true (f.Service.restarts = 0);
          check "cause recorded" true (f.Service.cause <> "")
      | _ -> Alcotest.fail "expected exactly one failure");
      check_string "stream identical despite degradation" baseline
        (Service.jsonl_string r)

let test_hard_failure_then_resume () =
  (* One slot, zero budget, killed mid-run: the hard failure surfaces as
     Error — but the checkpoints survive, and a resume completes the
     grid bit-identically. *)
  let spec = { fixed_spec with Campaign.Spec.name = "svc-hard" } in
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in
  let dir = Filename.temp_dir "svc-hard" "" in
  (match
     Service.run ~workers:1 ~record_dir:dir ~max_respawns:0
       ~kill_worker_after_cells:2 spec
   with
  | Ok r -> (
      match r.Service.status with
      | Service.Completed ->
          Alcotest.fail "expected the hard failure, got completion"
      | Service.Halted _ -> Alcotest.fail "unexpected halt")
  | Error e ->
      check "hard failure names the cause" true
        (let lower = String.lowercase_ascii e in
         String.length lower > 0
         &&
         let has needle =
           let nl = String.length needle and ll = String.length lower in
           let rec go i = i + nl <= ll && (String.sub lower i nl = needle || go (i + 1)) in
           go 0
         in
         has "respawn"));
  check "checkpoints survived the failure" true (cell_files dir <> []);
  let resumed = service_stream ~workers:2 ~record_dir:dir spec in
  check "resume completes" true (resumed.Service.status = Service.Completed);
  check_string "stream identical after hard failure + resume" baseline
    (Service.jsonl_string resumed)

let test_empty_grid () =
  let spec = { fixed_spec with Campaign.Spec.repetitions = 0 } in
  let r = service_stream ~workers:3 spec in
  check "completed" true (r.Service.status = Service.Completed);
  check_int "no workers spawned" 0 r.Service.manifest.Service.workers;
  check_string "stream matches in-process"
    (Campaign.jsonl_string (Campaign.run ~workers:1 spec))
    (Service.jsonl_string r)

let () =
  Alcotest.run "service"
    [
      ( "wire",
        [
          Alcotest.test_case "every split boundary recovers exactly" `Quick
            test_wire_every_boundary;
          QCheck_alcotest.to_alcotest prop_wire_fuzz;
          Alcotest.test_case "corrupt payload: skip + resync" `Quick
            test_wire_corrupt_payload;
          Alcotest.test_case "corrupt length: oversized + resync" `Quick
            test_wire_corrupt_length;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan grammar round-trips" `Quick
            test_chaos_grammar;
          Alcotest.test_case "schedules are seed-deterministic" `Quick
            test_chaos_deterministic_schedule;
          Alcotest.test_case "1/2/4 workers bit-identical under chaos" `Quick
            test_chaos_workers_invariant;
          Alcotest.test_case "chaos + coordinator crash + resume" `Quick
            test_chaos_resume_bit_identical;
        ] );
      ( "distributed",
        [ QCheck_alcotest.to_alcotest prop_distributed_invariant ] );
      ( "crash-resume",
        [
          Alcotest.test_case "halt + resume recomputes nothing" `Quick
            test_resume_recomputes_nothing;
          Alcotest.test_case "checkpoints replay bit-identically" `Quick
            test_checkpoints_replay;
          Alcotest.test_case "stale .tmp files are quarantined" `Quick
            test_stale_tmp_quarantined;
          Alcotest.test_case "corrupt checkpoints quarantined + recomputed"
            `Quick test_corrupt_checkpoints_quarantined;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "budget exhaustion completes degraded" `Quick
            test_degraded_completion;
          Alcotest.test_case "hard failure leaves resumable checkpoints"
            `Quick test_hard_failure_then_resume;
        ] );
      ( "edge",
        [ Alcotest.test_case "empty grid" `Quick test_empty_grid ] );
    ]
